"""Tests for the write-mode table (paper Table I)."""

import pytest

from repro.errors import ConfigError
from repro.pcm.drift import DriftModel, DriftParameters
from repro.pcm.write_modes import (
    RESET_LATENCY_NS,
    SET_ITERATION_LATENCY_NS,
    WriteModeTable,
    write_latency_ns,
)

PAPER_TABLE_I = {
    # n_sets: (current_uA, norm_energy, retention_s, latency_ns)
    7: (30, 1.0, 3054.9, 1150),
    6: (32, 0.975, 991.4, 1000),
    5: (35, 0.972, 104.4, 850),
    4: (37, 0.869, 24.05, 700),
    3: (42, 0.840, 2.01, 550),
}


class TestLatency:
    @pytest.mark.parametrize("n_sets", [3, 4, 5, 6, 7])
    def test_latency_recurrence(self, n_sets):
        assert write_latency_ns(n_sets) == (
            RESET_LATENCY_NS + n_sets * SET_ITERATION_LATENCY_NS
        )

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            write_latency_ns(2)
        with pytest.raises(ConfigError):
            write_latency_ns(8)


class TestTable:
    def test_full_table_matches_paper(self, modes):
        for n_sets, (current, energy, retention, latency) in PAPER_TABLE_I.items():
            mode = modes.mode(n_sets)
            assert mode.set_current_ua == current
            assert mode.normalized_energy == pytest.approx(energy)
            assert mode.retention_s == pytest.approx(retention, rel=0.005)
            assert mode.latency_ns == latency

    def test_fast_and_slow_aliases(self, modes):
        assert modes.fast.n_sets == 3
        assert modes.slow.n_sets == 7

    def test_iteration_is_sorted_and_complete(self, modes):
        table = list(modes)
        assert [m.n_sets for m in table] == [3, 4, 5, 6, 7]
        assert len(modes) == 5

    def test_mode_names(self, modes):
        assert modes.mode(7).name == "7-SETs-Write"
        assert modes.mode(3).name == "3-SETs-Write"

    def test_unknown_mode_rejected(self, modes):
        with pytest.raises(ConfigError):
            modes.mode(9)

    def test_current_decreases_with_sets(self, modes):
        currents = [m.set_current_ua for m in modes]
        assert currents == sorted(currents, reverse=True)


class TestPauseBoundaries:
    def test_boundary_count(self, modes):
        # RESET end plus one per SET iteration.
        assert len(modes.mode(3).set_boundaries_ns) == 4
        assert len(modes.mode(7).set_boundaries_ns) == 8

    def test_first_boundary_after_reset(self, modes):
        assert modes.mode(5).set_boundaries_ns[0] == RESET_LATENCY_NS

    def test_last_boundary_is_write_end(self, modes):
        mode = modes.mode(4)
        assert mode.set_boundaries_ns[-1] == mode.latency_ns

    def test_boundaries_spaced_by_set_latency(self, modes):
        bounds = modes.mode(6).set_boundaries_ns
        deltas = {b - a for a, b in zip(bounds, bounds[1:])}
        assert deltas == {SET_ITERATION_LATENCY_NS}


class TestRefreshInterval:
    def test_default_slack_is_half_percent(self, modes):
        interval = modes.refresh_interval_s(3)
        retention = modes.mode(3).retention_s
        assert interval == pytest.approx(retention * 0.995)

    def test_paper_interval_close_to_two_seconds(self, modes):
        assert modes.refresh_interval_s(3) == pytest.approx(2.0, rel=0.01)

    def test_explicit_slack(self, modes):
        retention = modes.mode(3).retention_s
        assert modes.refresh_interval_s(3, slack_s=0.01) == pytest.approx(
            retention - 0.01
        )

    def test_slack_bounds_checked(self, modes):
        with pytest.raises(ConfigError):
            modes.refresh_interval_s(3, slack_s=-1.0)
        with pytest.raises(ConfigError):
            modes.refresh_interval_s(3, slack_s=10.0)


class TestScaledTable:
    def test_scaled_table_keeps_latency(self):
        scaled = WriteModeTable(DriftModel(DriftParameters(drift_scale=50.0)))
        assert scaled.mode(7).latency_ns == 1150
        assert scaled.mode(7).retention_s == pytest.approx(3054.9 / 50, rel=0.005)
