"""Tests for distribution statistics."""

import pytest

from repro.analysis.distributions import (
    gini_coefficient,
    lorenz_curve,
    quantile,
    summarize,
    wear_histogram,
)
from repro.errors import ConfigError


class TestQuantile:
    def test_median_of_odd(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert quantile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [3, 7, 9]
        assert quantile(data, 0.0) == 3
        assert quantile(data, 1.0) == 9

    def test_single_element(self):
        assert quantile([5], 0.9) == 5.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            quantile([], 0.5)
        with pytest.raises(ConfigError):
            quantile([1], 1.5)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([4, 4, 4, 4]) == pytest.approx(0.0)

    def test_concentration_approaches_one(self):
        value = gini_coefficient([0] * 99 + [100])
        assert value > 0.95

    def test_known_two_point(self):
        # [0, 1]: Gini = 0.5 for n=2.
        assert gini_coefficient([0, 1]) == pytest.approx(0.5)

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 10])
        b = gini_coefficient([10, 20, 30, 100])
        assert a == pytest.approx(b)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            gini_coefficient([1, -1])


class TestSummary:
    def test_fields(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.total == 10
        assert summary.mean == 2.5
        assert summary.minimum == 1 and summary.maximum == 4
        assert summary.p50 == pytest.approx(2.5)

    def test_leveling_efficiency(self):
        summary = summarize([5, 5, 10])
        assert summary.leveling_efficiency == pytest.approx((20 / 3) / 10)
        assert summary.max_over_mean == pytest.approx(10 / (20 / 3))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])


class TestLorenz:
    def test_endpoints(self):
        curve = lorenz_curve([1, 2, 3, 4], points=5)
        assert curve[0] == (0.0, 0.0)
        assert curve[-1][1] == pytest.approx(1.0)

    def test_uniform_is_diagonal(self):
        curve = lorenz_curve([2] * 10, points=6)
        for population, value in curve:
            assert value == pytest.approx(population, abs=1e-9)

    def test_concentrated_sags(self):
        curve = lorenz_curve([0] * 9 + [10], points=11)
        # 90% of the population holds 0% of the value.
        mid = [v for p, v in curve if abs(p - 0.9) < 1e-9]
        assert mid and mid[0] == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            lorenz_curve([], points=5)
        with pytest.raises(ConfigError):
            lorenz_curve([1], points=1)


class TestWearHistogram:
    def test_binning(self):
        wear = {0: 1, 1: 5, 2: 50, 3: 500}
        hist = wear_histogram(wear, (1, 10, 100))
        assert hist["[1, 10)"] == 2
        assert hist["[10, 100)"] == 1
        assert hist[">= 100"] == 1

    def test_below_first_edge_dropped(self):
        hist = wear_histogram({0: 0}, (1, 10))
        assert sum(hist.values()) == 0

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ConfigError):
            wear_histogram({}, (10, 1))
