"""Tests for system configuration."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import MemoryConfig, SystemConfig
from repro.utils.units import parse_size


class TestMemoryConfig:
    def test_paper_defaults(self):
        cfg = MemoryConfig()
        assert cfg.size_bytes == parse_size("8GB")
        assert cfg.n_channels == 4
        assert cfg.banks_per_channel == 16
        assert cfg.read_queue_capacity == 32
        assert cfg.write_queue_capacity == 64
        assert cfg.refresh_queue_capacity == 64
        assert cfg.endurance_writes == 5_000_000
        assert cfg.wear_leveling_efficiency == 0.95

    def test_block_count(self):
        assert MemoryConfig().n_blocks == (8 << 30) // 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 0},
            {"size_bytes": 100},
            {"n_channels": 3},
            {"banks_per_channel": 5},
            {"read_queue_capacity": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            MemoryConfig(**kwargs)


class TestSystemConfig:
    def test_paper_configuration(self):
        cfg = SystemConfig.paper()
        assert cfg.n_cores == 4
        assert cfg.cores.freq_ghz == 2.0
        assert cfg.drift_scale == 1.0
        assert cfg.duration_s == 5.0
        assert cfg.rrm.n_sets == 256
        assert cfg.llc_bytes == parse_size("6MB")

    def test_scaled_keeps_refresh_windows(self):
        """Scaled duration x drift_scale must equal the paper's 5 seconds
        so each run sees the same number of refresh intervals."""
        cfg = SystemConfig.scaled()
        assert cfg.virtual_duration_s == pytest.approx(5.0)

    def test_scaled_rrm_coverage_ratio_preserved(self):
        cfg = SystemConfig.scaled()
        assert cfg.rrm.coverage_bytes == 4 * cfg.llc_bytes

    def test_paper_rrm_coverage_ratio(self):
        cfg = SystemConfig.paper()
        assert cfg.rrm.coverage_bytes == 4 * cfg.llc_bytes

    def test_tiny_is_small(self):
        cfg = SystemConfig.tiny()
        assert cfg.memory.size_bytes < SystemConfig.scaled().memory.size_bytes
        assert cfg.duration_s < SystemConfig.scaled().duration_s

    def test_variants(self):
        cfg = SystemConfig.scaled()
        assert cfg.with_seed(9).seed == 9
        assert cfg.with_duration(0.5).duration_s == 0.5
        rrm = cfg.rrm.with_hot_threshold(8)
        assert cfg.with_rrm(rrm).rrm.hot_threshold == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cores": 0},
            {"drift_scale": 0.0},
            {"duration_s": 0.0},
            {"footprint_scale": 0.0},
            {"llc_bytes": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SystemConfig(**kwargs)
