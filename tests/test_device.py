"""Tests for the assembled PCM device."""

import pytest

from repro.errors import ConfigError
from repro.pcm.device import BLOCK_BYTES, PCMDevice
from repro.pcm.endurance import WearTracker
from repro.pcm.energy import EnergyModel
from repro.utils.units import parse_size


class TestGeometry:
    def test_block_count(self, small_device):
        assert small_device.n_blocks == parse_size("16MB") // BLOCK_BYTES

    def test_bank_grid(self, small_device):
        assert small_device.n_banks == 4
        assert len(small_device.banks()) == 4

    def test_banks_distinct(self, small_device):
        banks = small_device.banks()
        banks[0].schedule_read(0.0, row=1)
        assert banks[1].reads_served == 0

    def test_bank_accessor_matches_flat_order(self, small_device):
        flat = small_device.banks()
        assert flat[0] is small_device.bank(0, 0)
        assert flat[1] is small_device.bank(0, 1)
        assert flat[2] is small_device.bank(1, 0)

    def test_blocks_per_row(self, small_device):
        assert small_device.blocks_per_row == 1024 // 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 0},
            {"size_bytes": 100},  # not a multiple of 64
            {"size_bytes": 1 << 20, "n_channels": 0},
            {"size_bytes": 1 << 20, "row_bytes": 100},
        ],
    )
    def test_invalid_geometry(self, kwargs):
        with pytest.raises(ConfigError):
            PCMDevice(**kwargs)


class TestGlobalRefresh:
    def test_rounds_fractional(self, small_device):
        assert small_device.global_refresh_rounds(5.0, 2.0) == pytest.approx(2.5)

    def test_zero_duration(self, small_device):
        assert small_device.global_refresh_rounds(0.0, 2.0) == 0.0

    def test_invalid_interval(self, small_device):
        with pytest.raises(ConfigError):
            small_device.global_refresh_rounds(1.0, 0.0)

    def test_accounting_updates_wear_and_energy(self, small_device):
        wear = WearTracker()
        energy = EnergyModel(modes=small_device.modes)
        rewrites = small_device.account_global_refresh(
            duration_s=4.0, interval_s=2.0, n_sets=7, wear=wear, energy=energy
        )
        assert rewrites == pytest.approx(2 * small_device.n_blocks)
        assert wear.breakdown.global_refresh_writes == 2 * small_device.n_blocks
        assert energy.breakdown.global_refresh_energy == pytest.approx(
            2 * small_device.n_blocks * 1.0
        )
