"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.SimulationError,
            errors.QueueFullError,
            errors.TraceFormatError,
            errors.RetentionViolationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_queue_full_is_simulation_error(self):
        assert issubclass(errors.QueueFullError, errors.SimulationError)

    def test_retention_violation_is_simulation_error(self):
        assert issubclass(errors.RetentionViolationError, errors.SimulationError)

    def test_catching_base_does_not_catch_builtin(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except errors.ReproError:  # pragma: no cover
                pytest.fail("ReproError must not catch ValueError")
