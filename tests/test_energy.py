"""Tests for the energy model."""

import pytest

from repro.pcm.energy import EnergyModel


class TestAccumulation:
    def test_write_energy_uses_mode_table(self, modes):
        model = EnergyModel(modes=modes)
        model.record_write(7)
        model.record_write(3)
        assert model.breakdown.write_energy == pytest.approx(1.0 + 0.84)

    def test_bulk_counts(self, modes):
        model = EnergyModel(modes=modes)
        model.record_write(7, count=10)
        assert model.breakdown.write_energy == pytest.approx(10.0)

    def test_read_energy(self, modes):
        model = EnergyModel(modes=modes, read_energy_units=0.05)
        model.record_read(count=100)
        assert model.breakdown.read_energy == pytest.approx(5.0)

    def test_rrm_refresh_energy_split_from_global(self, modes):
        model = EnergyModel(modes=modes)
        model.record_rrm_refresh(3, count=2)
        model.record_global_refresh(7, count=3)
        assert model.breakdown.rrm_refresh_energy == pytest.approx(2 * 0.84)
        assert model.breakdown.global_refresh_energy == pytest.approx(3.0)
        assert model.breakdown.refresh_energy == pytest.approx(2 * 0.84 + 3.0)

    def test_total_is_sum_of_parts(self, modes):
        model = EnergyModel(modes=modes)
        model.record_write(5)
        model.record_read()
        model.record_rrm_refresh(3)
        model.record_global_refresh(7, 1)
        parts = model.breakdown.as_dict()
        assert parts["total"] == pytest.approx(
            parts["write"] + parts["read"] + parts["rrm_refresh"] + parts["global_refresh"]
        )

    def test_negative_count_rejected(self, modes):
        model = EnergyModel(modes=modes)
        with pytest.raises(ValueError):
            model.record_write(7, count=-1)

    def test_fast_writes_cost_less_than_slow(self, modes):
        fast = EnergyModel(modes=modes)
        slow = EnergyModel(modes=modes)
        fast.record_write(3, count=100)
        slow.record_write(7, count=100)
        assert fast.breakdown.write_energy < slow.breakdown.write_energy
