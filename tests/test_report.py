"""Tests for the paper-style text reports."""

import pytest

from repro.analysis.report import (
    energy_report,
    format_table,
    lifetime_report,
    performance_report,
    wear_report,
)
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme


@pytest.fixture(scope="module")
def runner():
    r = ExperimentRunner(
        SystemConfig.tiny(),
        workloads=["hmmer"],
        schemes=[Scheme.STATIC_7, Scheme.STATIC_3, Scheme.RRM],
    )
    r.run_all()
    return r


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "x"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["n", "v"], [["a", 0.123456]])
        assert "0.123" in text

    def test_large_numbers_get_thousands_separator(self):
        text = format_table(["n", "v"], [["a", 123456.0]])
        assert "123,456" in text


class TestReports:
    def test_performance_report_has_geomean_row(self, runner):
        text = performance_report(runner)
        assert "geomean" in text
        assert "hmmer" in text
        assert "RRM" in text

    def test_performance_normalised_to_baseline(self, runner):
        text = performance_report(runner, baseline=Scheme.STATIC_7)
        # Baseline column is 1.000 for every workload row.
        row = [l for l in text.splitlines() if l.startswith("hmmer")][0]
        assert "1.000" in row

    def test_lifetime_report_units(self, runner):
        text = lifetime_report(runner)
        assert "years" in text

    def test_wear_report_normalised(self, runner):
        text = wear_report(runner)
        assert "rrm_refresh" in text and "global_refresh" in text
        # The Static-7 baseline row totals 1.0.
        row = [l for l in text.splitlines() if l.startswith("Static-7")][0]
        assert "1.000" in row

    def test_energy_report_sections(self, runner):
        text = energy_report(runner)
        for column in ("write", "read", "rrm_refresh", "global_refresh", "total"):
            assert column in text

    def test_reports_without_normalisation(self, runner):
        assert wear_report(runner, normalize_to=None)
        assert energy_report(runner, normalize_to=None)
