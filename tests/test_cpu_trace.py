"""Tests for the instruction-level access generator."""

import itertools

import pytest

from repro.errors import ConfigError
from repro.workloads.cpu_trace import CpuAccessGenerator, CpuTraceProfile


def take(generator, n):
    return list(itertools.islice(iter(generator), n))


class TestStream:
    def test_deterministic(self):
        profile = CpuTraceProfile()
        a = take(CpuAccessGenerator(profile, seed=5), 2000)
        b = take(CpuAccessGenerator(profile, seed=5), 2000)
        assert a == b

    def test_blocks_within_footprint(self):
        profile = CpuTraceProfile(footprint_blocks=4096, frame_blocks=512)
        for _, block, _ in take(CpuAccessGenerator(profile, base_block=100), 5000):
            assert 100 <= block < 100 + 4096

    def test_store_fraction_approximate(self):
        profile = CpuTraceProfile(store_fraction=0.3)
        accesses = take(CpuAccessGenerator(profile, seed=2), 20000)
        stores = sum(1 for _, _, w in accesses if w)
        assert stores / len(accesses) == pytest.approx(0.3, abs=0.03)

    def test_gap_tracks_access_rate(self):
        profile = CpuTraceProfile(accesses_per_kilo_instr=250.0)
        accesses = take(CpuAccessGenerator(profile, seed=2), 20000)
        mean_gap = sum(g for g, _, _ in accesses) / len(accesses)
        assert mean_gap == pytest.approx(4.0, rel=0.15)

    def test_reuse_dominates(self):
        """Most accesses re-touch the recency pool -> few distinct blocks."""
        profile = CpuTraceProfile(reuse_fraction=0.9)
        accesses = take(CpuAccessGenerator(profile, seed=2), 10000)
        distinct = len({block for _, block, _ in accesses})
        assert distinct < len(accesses) / 4


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"accesses_per_kilo_instr": 0},
            {"store_fraction": 1.5},
            {"reuse_fraction": -0.1},
            {"pool_blocks": 0},
            {"footprint_blocks": 100, "frame_blocks": 200},
            {"frame_jump_prob": 2.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CpuTraceProfile(**kwargs)
