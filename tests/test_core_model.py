"""Tests for the trace-driven core model."""

import pytest

from repro.cpu.core_model import CoreModel, CoreParams
from repro.errors import ConfigError
from repro.memctrl.controller import MemoryController
from repro.workloads.events import EV_READ, EV_REGISTER, EV_WRITE


def stream(events):
    return iter(list(events))


@pytest.fixture
def params():
    return CoreParams(freq_ghz=1.0, base_cpi=1.0, mlp=2, blocking_load_fraction=0.0)


def run_core(sim, controller, events, params, until=1e9, **kw):
    core = CoreModel(sim, 0, stream(events), controller, params, **kw)
    core.start()
    sim.run(until=until)
    return core


class TestInstructionAccounting:
    def test_gaps_retire_instructions(self, sim, controller, params):
        events = [(EV_READ, 100, 0, False), (EV_READ, 50, 64, False)]
        core = run_core(sim, controller, events, params)
        assert core.stats.retired_instructions == 150

    def test_ipc_computation(self, sim, controller, params):
        events = [(EV_READ, 1000, 0, False)]
        core = run_core(sim, controller, events, params)
        # 1000 instructions over the measured window.
        assert core.stats.ipc(duration_ns=2000.0, freq_ghz=1.0) == pytest.approx(0.5)

    def test_reads_issued_counted(self, sim, controller, params):
        events = [(EV_READ, 10, 0, False), (EV_READ, 10, 64, False)]
        core = run_core(sim, controller, events, params)
        assert core.stats.reads_issued == 2


class TestBlockingLoads:
    def test_blocking_load_serializes(self, sim, controller):
        params = CoreParams(
            freq_ghz=1.0, base_cpi=1.0, mlp=8, blocking_load_fraction=1.0
        )
        events = [(EV_READ, 10, 0, False), (EV_READ, 10, 0, False)]
        core = run_core(sim, controller, events, params)
        assert core.stats.blocking_stalls == 2
        # Second read issues only after the first completes + its gap.
        assert core.stats.reads_issued == 2

    def test_nonblocking_overlap_to_mlp(self, sim, controller, params):
        # mlp=2: the third read must wait for a completion.
        events = [(EV_READ, 1, i * 64, False) for i in range(3)]
        core = run_core(sim, controller, events, params)
        assert core.stats.mlp_stalls >= 1
        assert core.stats.reads_issued == 3


class TestWrites:
    def test_write_uses_mode_chooser(self, sim, controller, params):
        chosen = []

        def chooser(block):
            chosen.append(block)
            return 3

        events = [(EV_WRITE, 10, 128, False)]
        run_core(sim, controller, events, params, write_mode_chooser=chooser)
        assert chosen == [128]
        assert controller.stats.fast_writes == 1

    def test_default_mode_is_slow(self, sim, controller, params):
        events = [(EV_WRITE, 10, 0, False)]
        run_core(sim, controller, events, params)
        assert controller.stats.slow_writes == 1

    def test_write_queue_backpressure_stalls(self, sim, small_device, params):
        controller = MemoryController(
            sim, small_device, read_queue_capacity=4, write_queue_capacity=1,
        )
        # All writes to one bank; queue of 1 forces stalls.
        events = [(EV_WRITE, 1, 0, False) for _ in range(6)]
        core = run_core(sim, controller, events, params)
        assert core.stats.write_queue_stalls >= 1
        assert controller.stats.writes_completed == 6


class TestRegistrations:
    def test_register_sink_invoked(self, sim, controller, params):
        seen = []
        events = [(EV_REGISTER, 0, 5, True), (EV_REGISTER, 0, 6, False)]
        run_core(
            sim, controller, events, params,
            register_sink=lambda block, dirty: seen.append((block, dirty)),
        )
        assert seen == [(5, True), (6, False)]

    def test_registrations_without_sink_are_dropped(self, sim, controller, params):
        events = [(EV_REGISTER, 0, 5, True)]
        core = run_core(sim, controller, events, params)
        assert core.stats.registrations == 1


class TestEndTime:
    def test_core_parks_at_end_time(self, sim, controller, params):
        # Infinite stream; the core must stop pulling at end_time.
        def infinite():
            while True:
                yield (EV_READ, 100, 0, False)

        core = CoreModel(
            sim, 0, infinite(), controller, params, end_time_ns=1000.0
        )
        core.start()
        sim.run(until=5000.0)
        assert core.parked
        assert core.stats.retired_instructions <= 1100

    def test_exhausted_stream_parks(self, sim, controller, params):
        core = run_core(sim, controller, [(EV_READ, 10, 0, False)], params)
        assert core.parked


class TestParamsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"freq_ghz": 0.0},
            {"base_cpi": 0.0},
            {"mlp": 0},
            {"blocking_load_fraction": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CoreParams(**kwargs)

    def test_cycle_time(self):
        assert CoreParams(freq_ghz=2.0).cycle_ns == pytest.approx(0.5)
        assert CoreParams(freq_ghz=2.0, base_cpi=0.5).ns_per_instruction == (
            pytest.approx(0.25)
        )
