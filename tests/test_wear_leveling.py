"""Tests for the Start-Gap wear-levelling substrate."""

import random

import pytest

from repro.errors import ConfigError
from repro.pcm.wear_leveling import LeveledWearSimulator, StartGapLeveler


class TestMapping:
    def test_initial_identity(self):
        leveler = StartGapLeveler(n_lines=8)
        for logical in range(8):
            assert leveler.physical(logical) == logical

    def test_gap_slot_holds_no_line(self):
        leveler = StartGapLeveler(n_lines=8)
        assert leveler.logical(leveler.gap) is None

    def test_mapping_is_bijective_at_all_times(self):
        leveler = StartGapLeveler(n_lines=7, gap_write_interval=1)
        for _ in range(60):  # several full rotations
            slots = [leveler.physical(l) for l in range(7)]
            assert len(set(slots)) == 7
            assert leveler.gap not in slots
            leveler.record_write()

    def test_out_of_range(self):
        leveler = StartGapLeveler(n_lines=4)
        with pytest.raises(ConfigError):
            leveler.physical(4)
        with pytest.raises(ConfigError):
            leveler.logical(6)

    @pytest.mark.parametrize("kwargs", [
        {"n_lines": 0},
        {"n_lines": 4, "gap_write_interval": 0},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            StartGapLeveler(**kwargs)


class TestGapMovement:
    def test_gap_walks_down(self):
        leveler = StartGapLeveler(n_lines=4, gap_write_interval=1)
        assert leveler.gap == 4
        leveler.record_write()
        assert leveler.gap == 3

    def test_interval_counts_writes(self):
        leveler = StartGapLeveler(n_lines=4, gap_write_interval=3)
        assert leveler.record_write() is None
        assert leveler.record_write() is None
        assert leveler.record_write() is not None

    def test_copy_targets_vacated_slot(self):
        leveler = StartGapLeveler(n_lines=4, gap_write_interval=1)
        # First move: line below the gap (slot 3) is copied into slot 4.
        assert leveler.record_write() == 4
        assert leveler.gap == 3
        # Walk the gap to 0, then the wrap copy lands in slot 0.
        for expected in (3, 2, 1):
            assert leveler.record_write() == expected
        assert leveler.gap == 0
        assert leveler.record_write() == 0
        assert leveler.gap == 4 and leveler.start == 1

    def test_rotation_advances_start(self):
        leveler = StartGapLeveler(n_lines=4, gap_write_interval=1)
        for _ in range(5):  # gap walks 4 -> 0, then wraps
            leveler.record_write()
        assert leveler.start == 1
        assert leveler.gap == 4
        assert leveler.rotations == 1

    def test_line_moves_after_rotation(self):
        leveler = StartGapLeveler(n_lines=4, gap_write_interval=1)
        before = leveler.physical(0)
        for _ in range(5):
            leveler.record_write()
        assert leveler.physical(0) != before


class TestLevelingEfficiency:
    def test_uniform_wear_is_perfect(self):
        assert StartGapLeveler.leveling_efficiency([5, 5, 5]) == 1.0

    def test_hotspot_lowers_efficiency(self):
        assert StartGapLeveler.leveling_efficiency([10, 1, 1]) == pytest.approx(0.4)

    def test_zero_wear(self):
        assert StartGapLeveler.leveling_efficiency([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            StartGapLeveler.leveling_efficiency([])

    def test_hotspot_stream_levels_out(self):
        """A single-line hot spot, unlevelled, gives efficiency ~1/N;
        Start-Gap spreads it to near-uniform over enough rotations."""
        n_lines = 16
        unlevelled = [0] * (n_lines + 1)
        simulator = LeveledWearSimulator(
            StartGapLeveler(n_lines=n_lines, gap_write_interval=4)
        )
        rng = random.Random(3)
        for _ in range(40_000):
            # 80% of writes hit line 0; the rest are uniform.
            line = 0 if rng.random() < 0.8 else rng.randrange(n_lines)
            unlevelled[line] += 1
            simulator.write(line)
        baseline = StartGapLeveler.leveling_efficiency(unlevelled)
        levelled = simulator.efficiency()
        assert baseline < 0.1
        assert levelled > 0.5
        assert levelled > 5 * baseline

    def test_gap_moves_cost_extra_writes(self):
        simulator = LeveledWearSimulator(
            StartGapLeveler(n_lines=8, gap_write_interval=10)
        )
        for _ in range(100):
            simulator.write(0)
        # 100 demand writes + 10 gap-move copies.
        assert simulator.total_writes() == 110
