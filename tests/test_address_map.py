"""Tests for physical address decoding."""

import pytest

from repro.errors import ConfigError
from repro.memctrl.address_map import AddressMap
from repro.utils.units import parse_size


@pytest.fixture
def amap():
    return AddressMap(
        n_channels=2, banks_per_channel=4, row_bytes=1024,
        size_bytes=parse_size("16MB"),
    )


class TestDecode:
    def test_block_zero(self, amap):
        d = amap.decode_block(0)
        assert (d.channel, d.bank, d.row, d.column) == (0, 0, 0, 0)

    def test_channel_interleaving_at_block_granularity(self, amap):
        assert amap.decode_block(0).channel == 0
        assert amap.decode_block(1).channel == 1
        assert amap.decode_block(2).channel == 0

    def test_column_advances_within_row(self, amap):
        # Same channel: blocks 0, 2, 4 ... are consecutive columns.
        d0 = amap.decode_block(0)
        d2 = amap.decode_block(2)
        assert d2.column == d0.column + 1
        assert (d2.bank, d2.row) == (d0.bank, d0.row)

    def test_bank_advances_after_row_fills(self, amap):
        blocks_per_row = amap.blocks_per_row
        first_of_next = amap.decode_block(blocks_per_row * amap.n_channels)
        assert first_of_next.bank == 1
        assert first_of_next.column == 0

    def test_row_advances_after_banks_cycle(self, amap):
        stride = amap.blocks_per_row * amap.n_channels * amap.banks_per_channel
        d = amap.decode_block(stride)
        assert d.row == 1
        assert d.bank == 0

    def test_byte_address_decode(self, amap):
        assert amap.decode(128).block == 2

    def test_out_of_range_rejected(self, amap):
        with pytest.raises(ConfigError):
            amap.decode_block(amap.n_blocks)
        with pytest.raises(ConfigError):
            amap.decode(-1)

    def test_channel_of_block_fast_path(self, amap):
        for block in (0, 1, 17, 12345):
            assert amap.channel_of_block(block) == amap.decode_block(block).channel


class TestEncodeRoundtrip:
    @pytest.mark.parametrize("block", [0, 1, 63, 64, 1000, 262143])
    def test_roundtrip(self, amap, block):
        d = amap.decode_block(block)
        assert amap.encode(d.channel, d.bank, d.row, d.column) == block

    def test_encode_validates_ranges(self, amap):
        with pytest.raises(ConfigError):
            amap.encode(2, 0, 0, 0)
        with pytest.raises(ConfigError):
            amap.encode(0, 4, 0, 0)
        with pytest.raises(ConfigError):
            amap.encode(0, 0, 0, amap.blocks_per_row)


class TestBijectivity:
    def test_all_blocks_unique_coordinates(self):
        amap = AddressMap(
            n_channels=2, banks_per_channel=2, row_bytes=256, size_bytes=64 * 1024
        )
        seen = set()
        for block in range(amap.n_blocks):
            d = amap.decode_block(block)
            key = (d.channel, d.bank, d.row, d.column)
            assert key not in seen
            seen.add(key)
        assert len(seen) == amap.n_blocks


class TestValidation:
    def test_non_power_of_two_channels(self):
        with pytest.raises(ConfigError):
            AddressMap(3, 4, 1024, 1 << 20)

    def test_row_not_multiple_of_block(self):
        with pytest.raises(ConfigError):
            AddressMap(2, 4, 1000, 1 << 20)

    def test_size_not_whole_rows(self):
        with pytest.raises(ConfigError):
            AddressMap(2, 4, 1024, (1 << 20) + 64)

    def test_rows_per_bank(self, amap):
        expected = parse_size("16MB") // 1024 // 8
        assert amap.rows_per_bank == expected
