"""Tests for bounded controller queues."""

import pytest

from repro.errors import QueueFullError
from repro.memctrl.queues import BoundedQueue, QueueSet
from repro.memctrl.request import MemRequest, RequestType


def req(block=0, rtype=RequestType.READ):
    return MemRequest(rtype=rtype, block=block)


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        a, b = req(1), req(2)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_capacity_enforced(self):
        q = BoundedQueue(2)
        q.push(req())
        q.push(req())
        assert q.full
        with pytest.raises(QueueFullError):
            q.push(req())
        assert q.rejected == 1

    def test_peek_does_not_remove(self):
        q = BoundedQueue(2)
        a = req()
        q.push(a)
        assert q.peek() is a
        assert len(q) == 1

    def test_peek_empty(self):
        assert BoundedQueue(1).peek() is None

    def test_stats(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.push(req(i))
        q.pop()
        assert q.total_enqueued == 3
        assert q.peak_occupancy == 3

    def test_pop_first_ready_skips_unready(self):
        q = BoundedQueue(4)
        a, b = req(1), req(2)
        q.push(a)
        q.push(b)
        got = q.pop_first_ready(lambda r: r.block == 2)
        assert got is b
        assert list(q) == [a]

    def test_pop_first_ready_window_limits_search(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.push(req(i))
        got = q.pop_first_ready(lambda r: r.block == 4, window=2)
        assert got is None
        assert len(q) == 5

    def test_pop_first_ready_none_when_empty(self):
        assert BoundedQueue(2).pop_first_ready(lambda r: True) is None


class TestQueueSet:
    def test_request_type_routing(self):
        qs = QueueSet()
        assert qs.queue_for(RequestType.READ) is qs.read_queue
        assert qs.queue_for(RequestType.WRITE) is qs.write_queue
        assert qs.queue_for(RequestType.RRM_REFRESH) is qs.refresh_queue
        assert qs.queue_for(RequestType.RRM_SLOW_REFRESH) is qs.refresh_queue

    def test_priority_order(self):
        qs = QueueSet()
        assert qs.in_priority_order() == [
            qs.refresh_queue, qs.read_queue, qs.write_queue
        ]

    def test_paper_capacities(self):
        qs = QueueSet()
        assert qs.refresh_queue.capacity == 64
        assert qs.read_queue.capacity == 32
        assert qs.write_queue.capacity == 64

    def test_total_pending(self):
        qs = QueueSet()
        qs.read_queue.push(req())
        qs.write_queue.push(req(rtype=RequestType.WRITE))
        assert qs.total_pending == 2
