"""Tests for the performance-observability layer (repro.obs).

Covers the run ledger (durability, fingerprinting), the statistical
regression gate (rules, bootstrap, verdicts, the injected-slowdown
acceptance case), trace diffing, the progress reporters (including the
non-perturbation guarantee), the offline dashboard, the pinned core
suite, and the ``repro-rrm obs`` CLI surface.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.errors import ConfigError, LedgerCorruptError
from repro.obs import (
    CORE_SUITE,
    GateRule,
    LedgerEntry,
    RunLedger,
    RunProgress,
    SweepProgress,
    bootstrap_rel_delta,
    cell_name,
    compare_samples,
    config_hash,
    diff_traces,
    entries_by_name,
    environment_fingerprint,
    format_trace_diff,
    git_revision,
    load_baseline,
    load_rules,
    metric_series,
    render_dashboard,
    rule_for,
    run_core_suite,
    samples_from_entries,
    span_stats,
    write_baseline,
)
from repro.obs.progress import _format_count, _format_eta
from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.sim.system import System


def _entry(name="core/hmmer/RRM", **metrics) -> LedgerEntry:
    if not metrics:
        metrics = {"ipc": 1.0, "wall_time_s": 1.0}
    return LedgerEntry(kind="bench", name=name, metrics=metrics)


@pytest.fixture(scope="module")
def tiny_result():
    """One real tiny run, shared across the module's integration tests."""
    return run_workload(SystemConfig.tiny(seed=1), "hmmer", Scheme.RRM)


# ======================================================================
# Ledger
# ======================================================================
class TestLedger:
    def test_append_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "led.jsonl")
        ledger.append(_entry(ipc=2.0, wall_time_s=0.5))
        ledger.append(_entry(name="core/x/RRM", ipc=1.5, wall_time_s=0.7))
        entries = ledger.read()
        assert [e.name for e in entries] == ["core/hmmer/RRM", "core/x/RRM"]
        assert entries[0].metrics == {"ipc": 2.0, "wall_time_s": 0.5}
        assert entries[0].kind == "bench"
        assert ledger.entries_appended == 2

    def test_append_stamps_record_time(self, tmp_path):
        ledger = RunLedger(tmp_path / "led.jsonl")
        entry = ledger.append(_entry())
        assert entry.recorded_unix_s > 0
        assert ledger.read()[0].recorded_unix_s == entry.recorded_unix_s

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "led.jsonl"
        RunLedger(path).append(_entry())
        with path.open("a", encoding="utf-8") as f:
            f.write('{"kind": "bench", "name": "torn')  # no newline, torn
        entries = RunLedger.load(path)
        assert len(entries) == 1

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = RunLedger(path)
        ledger.append(_entry())
        text = path.read_text(encoding="utf-8")
        path.write_text("not json at all\n" + text, encoding="utf-8")
        with pytest.raises(LedgerCorruptError):
            RunLedger.load(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "led.jsonl"
        path.write_text('[1, 2, 3]\n{"kind": "run", "name": "x"}\n')
        with pytest.raises(LedgerCorruptError):
            RunLedger.load(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunLedger.load(tmp_path / "absent.jsonl")

    def test_from_json_dict_filters_non_numeric_metrics(self):
        entry = LedgerEntry.from_json_dict(
            {
                "kind": "run",
                "name": "n",
                "metrics": {"ipc": 1.0, "note": "hi", "flag": True, "n": 3},
            }
        )
        assert entry.metrics == {"ipc": 1.0, "n": 3}

    def test_from_result_names_and_metrics(self, tiny_result):
        entry = LedgerEntry.from_result(tiny_result, SystemConfig.tiny(seed=1))
        assert entry.name == "hmmer/RRM"
        assert entry.metrics["ipc"] == pytest.approx(tiny_result.ipc)
        assert entry.metrics["wall_time_s"] == tiny_result.wall_time_s
        assert entry.fingerprint["seed"] == 1
        assert "config_hash" in entry.fingerprint
        assert all(
            isinstance(v, (int, float)) for v in entry.metrics.values()
        )

    def test_from_result_extra_metrics_win(self, tiny_result):
        entry = LedgerEntry.from_result(
            tiny_result, extra_metrics={"extra.depth": 4, "bad": "nope"}
        )
        assert entry.metrics["extra.depth"] == 4
        assert "bad" not in entry.metrics

    def test_entries_by_name_and_metric_series(self):
        entries = [
            _entry(ipc=1.0),
            _entry(name="other", ipc=9.0),
            _entry(ipc=2.0),
        ]
        grouped = entries_by_name(entries)
        assert set(grouped) == {"core/hmmer/RRM", "other"}
        assert len(grouped["core/hmmer/RRM"]) == 2
        assert metric_series(entries, "core/hmmer/RRM", "ipc") == [1.0, 2.0]
        assert metric_series(entries, "core/hmmer/RRM", "absent") == []


class TestFingerprint:
    def test_config_hash_deterministic_and_seed_sensitive(self):
        a = SystemConfig.tiny(seed=1)
        assert config_hash(a) == config_hash(SystemConfig.tiny(seed=1))
        assert config_hash(a) != config_hash(SystemConfig.tiny(seed=2))

    def test_environment_fingerprint_fields(self):
        fp = environment_fingerprint(SystemConfig.tiny(seed=3))
        assert {"git_sha", "python", "repro_version", "config_hash"} <= set(fp)
        assert fp["seed"] == 3

    def test_git_revision_unknown_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) == "unknown"


# ======================================================================
# Gate: rules, statistics, verdicts
# ======================================================================
class TestGateRules:
    def test_first_match_wins(self):
        assert rule_for("ipc").direction == "up"
        assert rule_for("refresh_writes").direction == "down"
        assert rule_for("pcm.retention_violations").threshold == 0.0
        assert rule_for("made_up_metric") is None

    def test_invalid_rules_raise(self):
        with pytest.raises(ConfigError):
            GateRule("x", "sideways", 0.1)
        with pytest.raises(ConfigError):
            GateRule("x", "up", -0.1)

    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {
                    "rules": [
                        {"metric": "ipc", "direction": "up", "threshold": 0.02}
                    ]
                }
            )
        )
        rules = load_rules(path)
        assert rules[0].metric == "ipc" and rules[0].threshold == 0.02

    def test_load_rules_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            load_rules(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError):
            load_rules(bad)
        empty = tmp_path / "empty.json"
        empty.write_text('{"rules": []}')
        with pytest.raises(ConfigError):
            load_rules(empty)
        missing_key = tmp_path / "mk.json"
        missing_key.write_text('{"rules": [{"metric": "ipc"}]}')
        with pytest.raises(ConfigError):
            load_rules(missing_key)


class TestBootstrap:
    def test_single_sample_collapses_to_point(self):
        point, lo, hi = bootstrap_rel_delta([2.0], [3.0])
        assert point == pytest.approx(0.5)
        assert lo == hi == point

    def test_deterministic_for_seed(self):
        base = [1.0, 1.1, 0.9, 1.05]
        cur = [1.2, 1.3, 1.25, 1.15]
        assert bootstrap_rel_delta(base, cur, seed=7) == bootstrap_rel_delta(
            base, cur, seed=7
        )

    def test_interval_brackets_point(self):
        base = [1.0, 1.1, 0.9, 1.05, 0.95]
        cur = [1.5, 1.6, 1.45, 1.55, 1.5]
        point, lo, hi = bootstrap_rel_delta(base, cur, seed=1)
        assert lo <= point <= hi
        assert lo < hi  # repeated samples yield a real interval


class TestCompare:
    def test_identical_samples_all_ok(self):
        samples = {"a": {"ipc": [2.0], "wall_time_s": [1.0]}}
        report = compare_samples(samples, samples)
        assert not report.regressions
        assert report.exit_code() == 0
        assert report.counts.get("ok") == 2

    def test_injected_slowdown_flags_regression(self):
        base = {"a": {"wall_time_s": [1.0], "ipc": [2.0]}}
        cur = {"a": {"wall_time_s": [3.0], "ipc": [2.0]}}  # 3x slower
        report = compare_samples(base, cur)
        assert [v.metric for v in report.regressions] == ["wall_time_s"]
        assert report.regressions[0].delta == pytest.approx(2.0)
        assert report.exit_code() == 1
        assert report.exit_code(report_only=True) == 0

    def test_ipc_direction(self):
        base = {"a": {"ipc": [2.0]}}
        down = compare_samples(base, {"a": {"ipc": [1.8]}})
        assert down.regressions and down.regressions[0].metric == "ipc"
        up = compare_samples(base, {"a": {"ipc": [2.2]}})
        assert up.improvements and not up.regressions

    def test_within_guard_band_is_ok(self):
        base = {"a": {"wall_time_s": [1.0]}}
        report = compare_samples(base, {"a": {"wall_time_s": [1.3]}})
        assert not report.regressions  # +30% inside the 50% band

    def test_zero_baseline_growth_regresses_down_metrics(self):
        base = {"a": {"retention_violations": [0.0]}}
        grown = compare_samples(base, {"a": {"retention_violations": [2.0]}})
        assert grown.regressions
        still_zero = compare_samples(
            base, {"a": {"retention_violations": [0.0]}}
        )
        assert not still_zero.regressions

    def test_missing_and_new_names(self):
        report = compare_samples(
            {"gone": {"ipc": [1.0]}}, {"fresh": {"ipc": [1.0]}}
        )
        verdicts = {(v.name, v.verdict) for v in report.verdicts}
        assert ("gone", "missing") in verdicts
        assert ("fresh", "new") in verdicts

    def test_unruled_metric_is_info_only(self):
        base = {"a": {"mystery": [1.0]}}
        report = compare_samples(base, {"a": {"mystery": [100.0]}})
        assert report.by_verdict("info") and not report.regressions

    def test_format_text_mentions_flags_and_summary(self):
        report = compare_samples(
            {"a": {"wall_time_s": [1.0]}}, {"a": {"wall_time_s": [3.0]}}
        )
        text = report.format_text()
        assert "REGRESSION" in text and "wall_time_s" in text
        assert text.splitlines()[-1].startswith("gate:")

    def test_samples_from_entries_last_n(self):
        entries = [_entry(ipc=v) for v in (1.0, 2.0, 3.0)]
        assert samples_from_entries(entries)["core/hmmer/RRM"]["ipc"] == [
            1.0,
            2.0,
            3.0,
        ]
        assert samples_from_entries(entries, last_n=1)["core/hmmer/RRM"][
            "ipc"
        ] == [3.0]


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "base.json"
        samples = {"a": {"ipc": [1.5, 1.6]}}
        write_baseline(path, samples, fingerprint={"git_sha": "abc"})
        assert load_baseline(path) == samples
        payload = json.loads(path.read_text())
        assert payload["fingerprint"]["git_sha"] == "abc"

    def test_load_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baseline(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError):
            load_baseline(bad)
        no_samples = tmp_path / "ns.json"
        no_samples.write_text('{"schema": 1}')
        with pytest.raises(ConfigError):
            load_baseline(no_samples)


# ======================================================================
# Trace diff
# ======================================================================
def _span(name, dur, ts=0.0):
    return {"ph": "X", "name": name, "cat": "c", "ts": ts, "dur": dur}


class TestTraceDiff:
    def test_span_stats_aggregates_complete_events_only(self):
        events = [
            _span("write", 2.0),
            _span("write", 4.0),
            {"ph": "i", "name": "write", "ts": 0.0},
            {"ph": "M", "name": "meta"},
        ]
        stats = span_stats(events)
        assert stats["write"].count == 2
        assert stats["write"].total_us == pytest.approx(6.0)
        assert stats["write"].mean_us == pytest.approx(3.0)
        assert stats["write"].max_us == pytest.approx(4.0)

    def test_diff_alignment_and_ordering(self):
        a = [_span("read", 1.0), _span("read", 1.0), _span("old", 5.0)]
        b = [_span("read", 1.0), _span("fresh", 50.0)]
        diff = diff_traces(a, b)
        assert [r.name for r in diff.added] == ["fresh"]
        assert [r.name for r in diff.removed] == ["old"]
        assert [r.name for r in diff.common] == ["read"]
        # Largest |total delta| first: fresh (+50) > old (-5) > read (-1).
        assert [r.name for r in diff.rows] == ["fresh", "old", "read"]
        read = diff.common[0]
        assert read.count_delta == -1
        assert read.total_delta_us == pytest.approx(-1.0)

    def test_format_reports_counts_and_deltas(self):
        text = format_trace_diff(
            diff_traces([_span("x", 1.0)], [_span("x", 3.0)])
        )
        assert "1 common, 0 added, 0 removed" in text
        assert "dtotal=+2.0us" in text

    def test_format_empty(self):
        assert "no spans" in format_trace_diff(diff_traces([], []))

    def test_percentile_interpolation(self):
        from repro.obs.tracediff import percentile

        assert percentile([], 0.95) == 0.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 0.95) == pytest.approx(9.5)


# ======================================================================
# Progress reporters
# ======================================================================
class TestRunProgress:
    def test_does_not_perturb_results(self, tiny_result):
        config = SystemConfig.tiny(seed=1)
        system = System(config, "hmmer", Scheme.RRM)
        stream = io.StringIO()
        progress = RunProgress(system, stream=stream, updates=7)
        progress.register_metrics(system.telemetry.registry)
        progress.attach()
        result = system.run()
        progress.close()
        observed = result.as_dict()
        plain = tiny_result.as_dict()
        assert observed == plain
        # The tick at exactly t=duration may or may not run depending on
        # end-of-run ordering; everything before it must have.
        assert progress.ticks >= 6
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == progress.ticks
        assert "ETA" in lines[0] and "ev" in lines[0]
        assert lines[-1].startswith("run ")

    def test_validation(self):
        system = System(SystemConfig.tiny(seed=1), "hmmer", Scheme.RRM)
        with pytest.raises(ConfigError):
            RunProgress(system, updates=0)
        with pytest.raises(ConfigError):
            RunProgress(system, interval_s=0)
        progress = RunProgress(system, stream=io.StringIO())
        progress.attach()
        with pytest.raises(ConfigError):
            progress.attach()

    def test_formatters(self):
        assert _format_eta(5) == "0:05"
        assert _format_eta(3700) == "1:01:40"
        assert _format_eta(float("nan")) == "--:--"
        assert _format_eta(-1) == "--:--"
        assert _format_count(950) == "950"
        assert _format_count(1200) == "1.2k"
        assert _format_count(2.5e6) == "2.5M"


class TestSweepProgress:
    def test_counters_follow_lifecycle(self):
        stream = io.StringIO()
        progress = SweepProgress(3, stream=stream, clock=lambda: 0.0)
        progress.on_event("job.attempt", {"key": "a"})
        progress.on_event("job.result", {"key": "a"})
        progress.on_event("job.attempt", {"key": "b"})
        progress.on_event("job.retry", {"key": "b"})
        progress.on_event("job.attempt", {"key": "b"})
        progress.on_event("job.failed", {"key": "b"})
        progress.on_event("job.unknown", {})  # ignored, no redraw
        progress.close()
        assert progress.completed == 1
        assert progress.failed == 1
        assert progress.retries == 1
        assert progress.running == 0
        lines = stream.getvalue().splitlines()
        assert len(lines) == 6
        assert "2/3 settled" in lines[-1]

    def test_register_metrics(self):
        from repro.telemetry import MetricRegistry

        progress = SweepProgress(1, stream=io.StringIO())
        registry = MetricRegistry()
        progress.register_metrics(registry)
        progress.on_event("job.attempt", {})
        assert registry.get("obs.progress.attempts").value() == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            SweepProgress(-1)


# ======================================================================
# Dashboard
# ======================================================================
class TestDashboard:
    def test_self_contained_with_sparklines_and_verdicts(self):
        entries = [
            _entry(ipc=v, wall_time_s=1.0 + 0.1 * i)
            for i, v in enumerate((1.0, 1.2, 1.1))
        ]
        report = compare_samples(
            {"core/hmmer/RRM": {"ipc": [2.0]}},
            samples_from_entries(entries, last_n=1),
        )
        html_text = render_dashboard(entries, gate_report=report)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<svg" in html_text
        assert "regression" in html_text
        assert "http" not in html_text  # no external references
        assert "prefers-color-scheme" in html_text

    def test_escapes_names(self):
        entries = [_entry(name="<evil>&name", ipc=1.0)]
        html_text = render_dashboard(entries)
        assert "<evil>" not in html_text
        assert "&lt;evil&gt;" in html_text

    def test_empty_ledger(self):
        html_text = render_dashboard([])
        assert "ledger is empty" in html_text

    def test_flat_series_and_metric_selection(self):
        entries = [_entry(ipc=1.0), _entry(ipc=1.0)]
        html_text = render_dashboard(entries, metrics=["ipc"])
        assert html_text.count("<svg") == 1
        assert "wall_time_s" not in html_text


# ======================================================================
# Pinned core suite
# ======================================================================
class _FakeResult:
    def __init__(self, workload, scheme):
        self.workload = workload
        self.scheme = scheme
        self.wall_time_s = 0.01

    def as_dict(self):
        return {"ipc": 1.5, "refresh_writes": 10, "label": "text"}


class TestBenchSuite:
    def test_suite_records_everywhere(self, tmp_path):
        ledger_path = tmp_path / "led.jsonl"
        bench_json = tmp_path / "BENCH_core.json"
        baseline = tmp_path / "base.json"
        outcome = run_core_suite(
            ledger_path=ledger_path,
            bench_json_path=bench_json,
            baseline_out=baseline,
            runner=lambda config, w, s, **kw: _FakeResult(w, s),
        )
        assert len(outcome.entries) == len(CORE_SUITE)
        names = [e.name for e in outcome.entries]
        assert names[0] == cell_name(*CORE_SUITE[0])
        assert all(n.startswith("core/") for n in names)
        # Ledger got every cell, with bench kind.
        entries = RunLedger.load(ledger_path)
        assert [e.kind for e in entries] == ["bench"] * len(CORE_SUITE)
        # BENCH_core.json excludes host-dependent wall time.
        payload = json.loads(bench_json.read_text())
        assert payload["suite"] == "core" and payload["schema"] == 1
        assert len(payload["results"]) == len(CORE_SUITE)
        assert all(
            "wall_time_s" not in r["metrics"] for r in payload["results"]
        )
        # The pinned baseline gates green against the same results.
        report = compare_samples(
            load_baseline(baseline), samples_from_entries(entries)
        )
        assert not report.regressions

    def test_progress_callback_fires_per_cell(self, tmp_path):
        seen = []
        run_core_suite(
            progress=seen.append,
            runner=lambda config, w, s, **kw: _FakeResult(w, s),
        )
        assert len(seen) == len(CORE_SUITE)


# ======================================================================
# CLI integration
# ======================================================================
class TestObsCLI:
    def test_bench_gate_tamper_dashboard_flow(self, capsys, tmp_path):
        """The acceptance path: bench -> green gate -> injected 3x
        slowdown flags -> dashboard renders offline."""
        ledger = tmp_path / "led.jsonl"
        bench_json = tmp_path / "BENCH_core.json"
        baseline = tmp_path / "base.json"
        code = main(
            ["obs", "bench", "--ledger", str(ledger),
             "--bench-json", str(bench_json), "--baseline-out", str(baseline)]
        )
        assert code == 0
        assert bench_json.exists()
        capsys.readouterr()

        # Identical re-read gates green.
        assert main(
            ["obs", "gate", "--ledger", str(ledger),
             "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()

        # Inject a ~3x slowdown and the gate flags it...
        entries = RunLedger.load(ledger)
        slow = RunLedger(tmp_path / "slow.jsonl")
        for e in entries:
            m = dict(e.metrics)
            m["wall_time_s"] *= 3.0
            slow.append(LedgerEntry(kind=e.kind, name=e.name, metrics=m))
        assert main(
            ["obs", "gate", "--ledger", str(slow.path),
             "--baseline", str(baseline)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # ...unless running report-only.
        assert main(
            ["obs", "gate", "--ledger", str(slow.path),
             "--baseline", str(baseline), "--report-only"]
        ) == 0
        capsys.readouterr()

        out_html = tmp_path / "dash.html"
        assert main(
            ["obs", "dashboard", "--ledger", str(ledger),
             "--baseline", str(baseline), "--out", str(out_html)]
        ) == 0
        html_text = out_html.read_text()
        assert "<svg" in html_text and "http" not in html_text

    def test_compare_always_exits_zero(self, capsys, tmp_path):
        ledger = RunLedger(tmp_path / "led.jsonl")
        ledger.append(_entry(wall_time_s=9.0))
        baseline = tmp_path / "base.json"
        write_baseline(baseline, {"core/hmmer/RRM": {"wall_time_s": [1.0]}})
        assert main(
            ["obs", "compare", "--ledger", str(ledger.path),
             "--baseline", str(baseline)]
        ) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_gate_json_output(self, capsys, tmp_path):
        ledger = RunLedger(tmp_path / "led.jsonl")
        ledger.append(_entry(ipc=1.0))
        baseline = tmp_path / "base.json"
        write_baseline(baseline, {"core/hmmer/RRM": {"ipc": [1.0]}})
        verdicts = tmp_path / "verdicts.json"
        assert main(
            ["obs", "gate", "--ledger", str(ledger.path),
             "--baseline", str(baseline), "--json", str(verdicts)]
        ) == 0
        payload = json.loads(verdicts.read_text())
        assert payload["counts"].get("ok") == 1

    def test_gate_missing_inputs_exit_2(self, capsys, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline(baseline, {"a": {"ipc": [1.0]}})
        assert main(
            ["obs", "gate", "--ledger", str(tmp_path / "absent.jsonl"),
             "--baseline", str(baseline)]
        ) == 2
        assert main(
            ["obs", "gate", "--ledger", str(tmp_path / "absent.jsonl"),
             "--baseline", str(tmp_path / "nobase.json")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_pin_from_ledger(self, capsys, tmp_path):
        ledger = RunLedger(tmp_path / "led.jsonl")
        ledger.append(_entry(ipc=1.0))
        ledger.append(_entry(ipc=2.0))
        out = tmp_path / "pinned.json"
        assert main(
            ["obs", "pin", "--ledger", str(ledger.path), "--out", str(out)]
        ) == 0
        assert load_baseline(out) == {"core/hmmer/RRM": {"ipc": [2.0]}}

    def test_pin_empty_ledger_exit_2(self, capsys, tmp_path):
        path = tmp_path / "led.jsonl"
        path.write_text("")
        assert main(
            ["obs", "pin", "--ledger", str(path),
             "--out", str(tmp_path / "o.json")]
        ) == 2

    def test_run_with_ledger_and_progress(self, capsys, tmp_path):
        ledger = tmp_path / "led.jsonl"
        code = main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "static-7", "--ledger", str(ledger), "--progress"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "ledger entry appended" in err
        assert "ETA" in err
        entries = RunLedger.load(ledger)
        assert entries[0].name == "hmmer/Static-7-SETs"
        assert entries[0].kind == "run"

    def test_sweep_with_ledger_and_progress(self, capsys, tmp_path):
        ledger = tmp_path / "led.jsonl"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--ledger", str(ledger), "--progress"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "settled" in err
        entries = RunLedger.load(ledger)
        assert [e.kind for e in entries] == ["sweep"]

    def test_trace_diff_on_real_traces(self, capsys, tmp_path):
        trace_a = tmp_path / "a.json"
        trace_b = tmp_path / "b.json"
        assert main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "rrm", "--trace", str(trace_a)]
        ) == 0
        assert main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "static-7", "--trace", str(trace_b)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(trace_a), str(trace_b)]) == 0
        out = capsys.readouterr().out
        assert "span names" in out
        # RRM-only refresh spans disappear under static-7.
        assert "removed" in out and "dtotal=" in out

    def test_trace_diff_usage_errors(self, capsys, tmp_path):
        assert main(["trace", "diff", "only-one.json"]) == 2
        assert main(["trace", "a.json", "b.json"]) == 2
        missing = tmp_path / "absent.json"
        assert main(["trace", "diff", str(missing), str(missing)]) == 2
