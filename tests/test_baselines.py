"""Tests for the promotion (Amnesic-style) comparator baseline."""

import pytest

from repro.core.baselines import PromotionMonitor
from repro.core.config import RRMConfig
from repro.memctrl.request import RequestType


class StubController:
    def __init__(self):
        self.requests = []

    def can_accept(self, rtype, block):
        return True

    def enqueue(self, request):
        self.requests.append(request)

    def notify_space(self, rtype, block, callback):  # pragma: no cover
        raise AssertionError("unexpected backpressure in stub")


@pytest.fixture
def monitor(modes):
    return PromotionMonitor(
        RRMConfig(n_sets=4, n_ways=4), modes, controller=StubController()
    )


class TestPolicy:
    def test_every_write_is_fast(self, monitor):
        for block in (0, 1, 999):
            assert monitor.decide_write_mode(block) == 3

    def test_llc_registrations_ignored(self, monitor):
        monitor.register_llc_write(0, was_dirty=True)
        assert monitor.tags.occupancy == 0

    def test_written_block_is_tracked(self, monitor):
        monitor.decide_write_mode(5)
        entry = monitor.tags.lookup(0, touch=False)
        assert entry.vector_bit(5)
        assert entry.touched_vector >> 5 & 1


class TestInterrupt:
    def test_rewritten_block_refreshed_fast(self, monitor):
        monitor.decide_write_mode(5)
        monitor.on_refresh_interrupt()
        fast = [r for r in monitor.controller.requests
                if r.rtype is RequestType.RRM_REFRESH]
        assert [r.block for r in fast] == [5]
        assert monitor.promotions_issued == 0

    def test_idle_block_promoted_next_interval(self, monitor):
        monitor.decide_write_mode(5)
        monitor.on_refresh_interrupt()   # touched -> fast refresh
        monitor.on_refresh_interrupt()   # idle -> promotion
        slow = [r for r in monitor.controller.requests
                if r.rtype is RequestType.RRM_SLOW_REFRESH]
        assert [r.block for r in slow] == [5]
        assert monitor.promotions_issued == 1

    def test_promoted_block_untracked(self, monitor):
        monitor.decide_write_mode(5)
        monitor.on_refresh_interrupt()
        monitor.on_refresh_interrupt()
        # Entry disappears once it holds no fast blocks.
        assert monitor.tags.lookup(0, touch=False) is None

    def test_rewrite_keeps_block_fast(self, monitor):
        monitor.decide_write_mode(5)
        monitor.on_refresh_interrupt()
        monitor.decide_write_mode(5)     # re-written during the interval
        monitor.on_refresh_interrupt()
        assert monitor.promotions_issued == 0
        assert monitor.fast_refreshes == 2

    def test_write_once_stream_costs_double(self, monitor):
        """The paper's critique: each write-once block eventually takes a
        second (promotion) write."""
        blocks = list(range(16))
        for block in blocks:
            monitor.decide_write_mode(block)
        monitor.on_refresh_interrupt()   # all touched: fast refreshes
        monitor.on_refresh_interrupt()   # all idle: all promoted
        assert monitor.promotions_issued == len(blocks)


class TestEviction:
    def test_eviction_promotes_all_blocks(self, modes):
        config = RRMConfig(n_sets=1, n_ways=2)
        monitor = PromotionMonitor(config, modes, controller=StubController())
        monitor.decide_write_mode(0)                        # region 0
        monitor.decide_write_mode(config.blocks_per_region)  # region 1
        monitor.decide_write_mode(2 * config.blocks_per_region)  # evicts r0
        slow = [r for r in monitor.controller.requests
                if r.rtype is RequestType.RRM_SLOW_REFRESH]
        assert [r.block for r in slow] == [0]
        assert monitor.promotions_issued == 1
