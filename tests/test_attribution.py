"""Latency anatomy (repro.attribution): conservation, bit-identity,
blame aggregation, CLI surfaces, ledger/gate/dashboard wiring.

The two tests that define the subsystem:

- **conservation**: for every completed request, the named cause
  components sum *exactly* to the measured end-to-end latency, across
  randomised tiny configurations (seed, workload, scheme, duration);
- **bit-identity**: a run with attribution enabled reports the same
  simulation statistics as one without (mirroring the telemetry
  guarantee in test_obs.py) — the observer never perturbs the observed.
"""

import json
import random

import pytest

from repro.attribution import (
    BLOCKER_SCHEDULER,
    CLASS_READ,
    CLASS_RRM_FAST_REFRESH,
    CLASS_RRM_SLOW_REFRESH,
    CLASS_WRITE_FAST,
    CLASS_WRITE_OTHER,
    CLASS_WRITE_SLOW,
    BlameMatrix,
    RequestAnatomy,
    classify_request,
    format_report,
)
from repro.cli import main
from repro.errors import ConfigError
from repro.memctrl.request import MemRequest, RequestType
from repro.obs.dashboard import render_dashboard
from repro.obs.gate import DEFAULT_RULES, rule_for
from repro.obs.ledger import LedgerEntry
from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.telemetry import TelemetryConfig, flatten_args, summarize_trace
from repro.workloads.spec2006 import BENCHMARKS


def _attributed_system(config, workload, scheme):
    system = System(
        config,
        workload,
        scheme,
        telemetry=TelemetryConfig(attribution=True, trace=False),
    )
    result = system.run()
    return result, system.attribution_report()


@pytest.fixture(scope="module")
def plain_result():
    return run_workload(SystemConfig.tiny(seed=1), "hmmer", Scheme.RRM)


@pytest.fixture(scope="module")
def rrm_attr():
    return _attributed_system(SystemConfig.tiny(seed=1), "hmmer", Scheme.RRM)


@pytest.fixture(scope="module")
def s7_attr():
    return _attributed_system(
        SystemConfig.tiny(seed=1), "hmmer", Scheme.STATIC_7
    )


# ======================================================================
# The conservation invariant
# ======================================================================
class TestConservation:
    def test_every_component_sums_exactly_randomised(self):
        """Property-style: across random tiny configs, every completed
        request's components sum to its measured latency with zero
        floating-point error (the collector re-checks per request
        in-sim; here we assert the run-level maximum)."""
        rng = random.Random(2026)
        workloads = sorted(BENCHMARKS)  # mixes need 4 cores; tiny has 2
        for _ in range(6):
            config = SystemConfig.tiny(seed=rng.randrange(1, 1000))
            config = config.with_duration(rng.uniform(0.001, 0.003))
            workload = rng.choice(workloads)
            scheme = rng.choice([Scheme.RRM, Scheme.STATIC_7])
            _, report = _attributed_system(config, workload, scheme)
            assert report.requests > 0
            assert report.conservation_checks == report.requests
            assert report.max_conservation_error_ns == 0.0, (
                f"conservation broke: {workload}/{scheme.value} "
                f"err={report.max_conservation_error_ns}"
            )

    def test_full_tiny_run_conserves(self, rrm_attr):
        _, report = rrm_attr
        assert report.requests > 1000
        assert report.max_conservation_error_ns == 0.0

    def test_anatomy_conservation_arithmetic(self):
        anatomy = RequestAnatomy(
            req_id=1,
            victim=CLASS_READ,
            block=7,
            bank_index=0,
            channel=0,
            issue_ns=100.0,
            start_ns=160.0,
            finish_ns=302.5,
            blocked_ns={CLASS_WRITE_FAST: 40.0, CLASS_RRM_FAST_REFRESH: 15.0},
            sched_wait_ns=5.0,
            service_base_ns=22.5,
            row_miss_penalty_ns=120.0,
        )
        assert anatomy.total_ns == 202.5
        assert anatomy.wait_ns == 60.0
        assert anatomy.components_sum_ns() == pytest.approx(202.5)
        assert anatomy.conservation_error_ns() == 0.0
        assert anatomy.refresh_blamed_ns == 15.0
        # trace args keep only the non-zero causes
        args = anatomy.trace_args()
        assert "pause_preempt" not in args
        assert args["wait_rrm_fast_refresh"] == 15.0


# ======================================================================
# Bit-identity: the observer never perturbs the observed
# ======================================================================
class TestBitIdentity:
    def test_attributed_run_matches_plain_run(self, plain_result, rrm_attr):
        attributed_result, _ = rrm_attr
        assert attributed_result.as_dict() == plain_result.as_dict()

    def test_plain_run_has_no_attribution(self, plain_result):
        assert plain_result.attribution is None

    def test_attribution_report_requires_enablement(self):
        system = System(SystemConfig.tiny(seed=1), "hmmer", Scheme.RRM)
        with pytest.raises(ConfigError):
            system.attribution_report()


# ======================================================================
# Taxonomy + blame matrix
# ======================================================================
class TestModel:
    def test_classify_request(self):
        fast, slow = 3, 7
        cases = [
            (RequestType.READ, None, CLASS_READ),
            (RequestType.RRM_REFRESH, 3, CLASS_RRM_FAST_REFRESH),
            (RequestType.RRM_SLOW_REFRESH, 7, CLASS_RRM_SLOW_REFRESH),
            (RequestType.WRITE, 3, CLASS_WRITE_FAST),
            (RequestType.WRITE, 7, CLASS_WRITE_SLOW),
            (RequestType.WRITE, 5, CLASS_WRITE_OTHER),
        ]
        for rtype, n_sets, expected in cases:
            request = MemRequest(rtype, block=0, n_sets=n_sets)
            assert classify_request(request, fast, slow) == expected

    def test_blame_matrix_totals_and_merge(self):
        a = BlameMatrix()
        a.add(CLASS_READ, CLASS_WRITE_SLOW, 100.0)
        a.add(CLASS_READ, BLOCKER_SCHEDULER, 10.0)
        a.add_victim(CLASS_READ, 250.0)
        b = BlameMatrix()
        b.add(CLASS_READ, CLASS_WRITE_SLOW, 50.0)
        b.add_victim(CLASS_READ, 80.0)
        a.merge(b)
        assert a.get(CLASS_READ, CLASS_WRITE_SLOW) == 150.0
        assert a.victim_total(CLASS_READ) == 160.0
        assert a.blocker_total(CLASS_WRITE_SLOW) == 150.0
        assert a.victim_counts[CLASS_READ] == 2
        assert a.total_blamed_ns == 160.0
        # zero adds never create cells
        a.add(CLASS_READ, CLASS_WRITE_FAST, 0.0)
        assert CLASS_WRITE_FAST not in a.blockers()


# ======================================================================
# Interference accounting: the paper's tradeoff is visible causally
# ======================================================================
class TestInterference:
    def test_rrm_refresh_share_exceeds_static7(self, rrm_attr, s7_attr):
        """The acceptance criterion: RRM shows nonzero refresh
        interference on reads; Static-7 (no selective refresh) shows
        exactly none."""
        _, rrm_report = rrm_attr
        _, s7_report = s7_attr
        assert rrm_report.read_refresh_share > 0.0
        assert rrm_report.read_refresh_blame_ns > 0.0
        assert s7_report.read_refresh_share == 0.0
        assert s7_report.read_refresh_blame_ns == 0.0

    def test_report_renders_all_sections(self, rrm_attr):
        _, report = rrm_attr
        text = format_report(report, top=3, header="hmmer / RRM")
        assert "conservation" in text
        assert "max error 0 ns" in text
        assert "read refresh share" in text
        assert "victim \\ blocker" in text
        assert "per-bank read interference" in text
        assert "slowest 3 requests" in text

    def test_report_round_trips_to_json(self, rrm_attr):
        _, report = rrm_attr
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["requests"] == report.requests
        assert payload["max_conservation_error_ns"] == 0.0
        assert len(payload["slowest"]) > 0
        for anatomy in payload["slowest"]:
            total = sum(anatomy["components_ns"].values())
            assert total == pytest.approx(anatomy["total_ns"])


# ======================================================================
# Ledger / gate / dashboard wiring
# ======================================================================
class TestObservabilityWiring:
    def test_ledger_entry_merges_attr_metrics(self, rrm_attr):
        result, _ = rrm_attr
        entry = LedgerEntry.from_result(result)
        assert entry.metrics["attr_read_refresh_share"] > 0.0
        assert entry.metrics["attr_max_conservation_error_ns"] == 0.0
        assert any(k.startswith("attr_bank") for k in entry.metrics)
        # plain simulation metrics are still present and unchanged
        assert entry.metrics["ipc"] == result.ipc

    def test_gate_rules_precede_refresh_pattern(self):
        share_rule = rule_for("attr_read_refresh_share", DEFAULT_RULES)
        assert share_rule is not None
        assert share_rule.metric == "attr_read_refresh_share"
        assert share_rule.direction == "down"
        conservation_rule = rule_for(
            "attr_max_conservation_error_ns", DEFAULT_RULES
        )
        assert conservation_rule is not None
        assert conservation_rule.threshold == 0.0

    def test_dashboard_renders_attribution_section(self, rrm_attr):
        result, _ = rrm_attr
        entry = LedgerEntry.from_result(result, name="core/hmmer/RRM")
        html_text = render_dashboard([entry])
        assert "Latency attribution" in html_text
        assert "rrm_fast_refresh" in html_text  # legend pairs color + word
        assert "<svg" in html_text
        assert "http" not in html_text  # still self-contained

    def test_dashboard_without_attribution_omits_section(self):
        entry = LedgerEntry(kind="run", name="n", metrics={"ipc": 1.0})
        assert "Latency attribution" not in render_dashboard([entry])


# ======================================================================
# Trace integration: anatomies ride on span args and summarise
# ======================================================================
class TestTraceIntegration:
    def test_flatten_args_nested_and_non_numeric(self):
        flat = flatten_args(
            {"anatomy": {"wait_read": 2.0, "deep": {"x": 1}}, "label": "s",
             "hit": True}
        )
        assert flat == {
            "anatomy.wait_read": 2.0,
            "anatomy.deep.x": 1.0,
            "hit": 1.0,
        }

    def test_summary_aggregates_span_args(self):
        events = [
            {"ph": "X", "name": "read", "cat": "memctrl", "ts": 0.0,
             "dur": 1.0, "args": {"anatomy": {"wait_read": 10.0}}},
            {"ph": "X", "name": "read", "cat": "memctrl", "ts": 2.0,
             "dur": 1.0, "args": {"anatomy": {"wait_read": 30.0}}},
            {"ph": "X", "name": "bare", "cat": "memctrl", "ts": 4.0,
             "dur": 1.0},
        ]
        summary = summarize_trace(events)
        count, total = summary.span_args["read"]["anatomy.wait_read"]
        assert (count, total) == (2, 40.0)
        assert "bare" not in summary.span_args
        digest = summary.to_json_dict()
        assert digest["span_args"]["read"]["anatomy.wait_read"] == {
            "count": 2,
            "total": 40.0,
        }

    def test_traced_attributed_run_annotates_spans(self, tmp_path):
        config = SystemConfig.tiny(seed=1).with_duration(0.001)
        system = System(
            config,
            "hmmer",
            Scheme.RRM,
            telemetry=TelemetryConfig(attribution=True),
        )
        system.run()
        trace_path = tmp_path / "trace.json"
        system.telemetry.tracer.export_chrome(trace_path)
        from repro.telemetry import load_trace

        summary = summarize_trace(load_trace(trace_path))
        assert any(
            key.startswith("anatomy.")
            for key in summary.span_args.get("read", {})
        )


# ======================================================================
# CLI: explain + trace --json
# ======================================================================
class TestCLI:
    def test_explain_reports_and_exports(self, capsys, tmp_path):
        out_json = tmp_path / "anatomy.json"
        code = main(
            ["explain", "--config", "tiny", "--duration", "0.002",
             "--workload", "hmmer", "--scheme", "rrm",
             "--top", "2", "--json", str(out_json)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "max error 0 ns" in out
        assert "slowest 2 requests" in out
        payload = json.loads(out_json.read_text())
        assert payload["max_conservation_error_ns"] == 0.0

    def test_explain_bad_scheme_exits_2(self, capsys):
        code = main(
            ["explain", "--config", "tiny", "--duration", "0.001",
             "--scheme", "nonsense"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_json_export(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        trace_path.write_text(
            json.dumps(
                {"traceEvents": [
                    {"ph": "X", "name": "read", "cat": "m", "ts": 0.0,
                     "dur": 5.0, "args": {"anatomy": {"wait_read": 1.0}}},
                ]}
            )
        )
        out_json = tmp_path / "summary.json"
        code = main(["trace", str(trace_path), "--json", str(out_json)])
        assert code == 0
        assert "span args" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["span_args"]["read"]["anatomy.wait_read"]["count"] == 1

    def test_trace_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.json")]) == 2

    def test_run_attribution_flag_stays_bit_identical(
        self, capsys, plain_result
    ):
        code = main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "rrm", "--attribution"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "attribution:" in captured.err
        # the printed summary line is identical to an unattributed run's
        assert plain_result.summary() in captured.out
