"""Tests for the sharded sweep fabric: locking, shared journal, executor,
serve protocol, and the satellite observability pieces."""

from __future__ import annotations

import io
import json
import multiprocessing
import threading
import time

import pytest

from repro.errors import (
    CheckpointCorruptError,
    ConfigError,
    LockTimeoutError,
    ProtocolError,
)
from repro.fabric import (
    Claim,
    FabricClient,
    FabricExecutor,
    FabricServer,
    FileLock,
    SharedJournal,
    SweepSpec,
    parse_address,
)
from repro.obs.gate import GateRule, compare_samples
from repro.obs.ledger import KIND_SWEEP, LedgerEntry, RunLedger, merge_ledgers
from repro.obs.progress import SweepProgress, _LineWriter
from repro.resilience import FaultPlan, ResultJournal, RetryPolicy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner, run_workload
from repro.sim.schemes import Scheme

#: Event cap that keeps each simulated cell well under a second.
FAST = 20_000


def tiny_config(seed: int = 1) -> SystemConfig:
    return SystemConfig.tiny(seed=seed)


# ----------------------------------------------------------------------
# Module-level worker functions (picklable / spawn-able)
# ----------------------------------------------------------------------
def _locked_increment(path, counter, rounds) -> None:
    for _ in range(rounds):
        with FileLock(path, timeout_s=30.0):
            value = int(counter.read_text() or "0")
            time.sleep(0.0005)  # widen the race window
            counter.write_text(str(value + 1))


def _hammer_claims(journal_path, worker_id, shard, all_keys) -> None:
    journal = SharedJournal(journal_path)
    while True:
        claim = journal.claim_next(
            worker_id, shard, all_keys, lease_s=60.0
        )
        if claim is None:
            if not journal.unsettled(all_keys):
                return
            time.sleep(0.001)
            continue
        journal.append_result(
            claim.key[0],
            claim.key[1],
            {"attempt": claim.attempt, "worker": worker_id},
            worker=worker_id,
        )


# ----------------------------------------------------------------------
# FileLock
# ----------------------------------------------------------------------
class TestFileLock:
    def test_mutual_exclusion_across_processes(self, tmp_path):
        target = tmp_path / "protected"
        counter = tmp_path / "counter"
        counter.write_text("0")
        rounds, n_procs = 20, 3
        procs = [
            multiprocessing.Process(
                target=_locked_increment, args=(target, counter, rounds)
            )
            for _ in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert int(counter.read_text()) == rounds * n_procs

    def test_timeout_raises(self, tmp_path):
        target = tmp_path / "t"
        held = FileLock(target, timeout_s=5.0).acquire()
        try:
            with pytest.raises(LockTimeoutError):
                FileLock(target, timeout_s=0.05).acquire()
        finally:
            held.release()

    def test_release_allows_reacquire(self, tmp_path):
        lock = FileLock(tmp_path / "t", timeout_s=1.0)
        with lock:
            pass
        with lock:
            pass  # no deadlock, no stale state

    def test_injected_clock_drives_timeout(self, tmp_path):
        # With a fake clock the deadline expires on the second reading —
        # no real waiting, which is the whole point of injecting it.
        target = tmp_path / "t"
        held = FileLock(target, timeout_s=5.0).acquire()
        ticks = iter([0.0, 100.0, 200.0])
        try:
            with pytest.raises(LockTimeoutError):
                FileLock(
                    target, timeout_s=5.0, clock=lambda: next(ticks)
                ).acquire()
        finally:
            held.release()


# ----------------------------------------------------------------------
# SharedJournal
# ----------------------------------------------------------------------
class TestSharedJournal:
    def keys(self, n=6):
        return [(f"w{i}", "rrm") for i in range(n)]

    def test_claim_prefers_own_shard_then_steals(self, tmp_path):
        journal = SharedJournal(tmp_path / "j.jsonl")
        journal.start({})
        keys = self.keys(4)
        shard0 = keys[0::2]
        claim = journal.claim_next(0, shard0, keys, lease_s=60.0)
        assert claim == Claim(keys[0], 1, False, claim.expires_unix_s)
        # Drain the shard; the next claim must be a steal, in sweep order.
        journal.append_result(*keys[0], {"ok": 1})
        journal.append_result(*keys[2], {"ok": 1})
        stolen = journal.claim_next(0, shard0, keys, lease_s=60.0)
        assert stolen.key == keys[1] and stolen.stolen

    def test_outstanding_lease_blocks_reclaim_until_expiry(self, tmp_path):
        journal = SharedJournal(tmp_path / "j.jsonl")
        journal.start({})
        keys = self.keys(1)
        now = [1000.0]
        clock = lambda: now[0]  # noqa: E731
        first = journal.claim_next(0, keys, keys, lease_s=10.0, clock=clock)
        assert first.attempt == 1
        assert journal.claim_next(1, keys, keys, lease_s=10.0, clock=clock) is None
        now[0] += 11.0  # lease expired: claimable again, next attempt
        second = journal.claim_next(1, keys, keys, lease_s=10.0, clock=clock)
        assert second.key == keys[0] and second.attempt == 2

    def test_release_returns_job_to_queue(self, tmp_path):
        journal = SharedJournal(tmp_path / "j.jsonl")
        journal.start({})
        keys = self.keys(1)
        claim = journal.claim_next(0, keys, keys, lease_s=60.0)
        journal.release(claim.key, 0, "retry")
        again = journal.claim_next(1, keys, keys, lease_s=60.0)
        assert again.key == keys[0] and again.attempt == 2

    def test_concurrent_claim_hammer_exactly_once(self, tmp_path):
        """N processes racing over one journal settle every job exactly
        once and leave no torn lines."""
        path = tmp_path / "j.jsonl"
        SharedJournal(path).start({"seed": 1})
        keys = self.keys(12)
        n_workers = 4
        procs = [
            multiprocessing.Process(
                target=_hammer_claims,
                args=(path, i, keys[i::n_workers], keys),
            )
            for i in range(n_workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        # Every line parses (no torn writes) ...
        for line in path.read_text().splitlines():
            json.loads(line)
        # ... and the merge is exactly-once over the full key set.
        contents = ResultJournal.load(path)
        assert set(contents.results) == set(keys)
        assert not contents.failures
        # Claims never outnumber what a live fleet could issue: one per
        # settled job here, since leases were long and nothing crashed.
        assert all(len(c) == 1 for c in contents.claims.values())

    def test_torn_tail_is_repaired_on_next_append(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SharedJournal(path)
        journal.start({})
        journal.append_result("w0", "rrm", {"ok": 1})
        # Simulate a writer dying mid-line (no trailing newline).
        with open(path, "ab") as fh:
            fh.write(b'{"type": "torn-fragm')
        journal.append_result("w1", "rrm", {"ok": 1})
        # The fragment was truncated away; the strict loader sees a
        # clean journal with both complete records.
        assert b"torn-fragm" not in path.read_bytes()
        contents = ResultJournal.load(path)
        assert ("w0", "rrm") in contents.results
        assert ("w1", "rrm") in contents.results

    def test_loads_with_plain_result_journal(self, tmp_path):
        """Fabric journals stay readable by the serial loader, leases
        and all — and resume_from drops the leases."""
        path = tmp_path / "j.jsonl"
        journal = SharedJournal(path)
        journal.start({"seed": 7})
        keys = self.keys(2)
        journal.claim_next(0, keys, keys, lease_s=60.0)
        journal.append_result(*keys[0], {"ok": 1}, worker=0)
        contents = ResultJournal.load(path)
        assert contents.meta["seed"] == 7
        assert keys[0] in contents.claims
        serial = ResultJournal(path)
        serial.resume_from(contents, {"seed": 7})
        resumed = ResultJournal.load(path)
        assert not resumed.claims and not resumed.releases
        assert keys[0] in resumed.results


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestSweepFingerprint:
    def test_resume_refuses_mismatched_config(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        runner = ExperimentRunner(
            tiny_config(seed=1),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        runner.run_all()
        other = ExperimentRunner(
            tiny_config(seed=2),  # different seed -> different config hash
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        with pytest.raises(CheckpointCorruptError, match="different sweep"):
            other.resume()

    def test_resume_refuses_mismatched_spec(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        runner.run_all()
        other = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer", "GemsFDTD"],  # widened sweep
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        with pytest.raises(CheckpointCorruptError, match="spec_sha256"):
            other.resume()

    def test_legacy_journal_without_fingerprint_resumes(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        runner.run_all()
        # Strip the fingerprint, as a pre-fabric journal would look.
        lines = journal.read_text().splitlines()
        meta = json.loads(lines[0])
        meta.pop("fingerprint")
        journal.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        again = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            journal_path=journal,
        )
        results = again.resume()
        assert len(results) == 1


# ----------------------------------------------------------------------
# FabricExecutor
# ----------------------------------------------------------------------
#: to_json_dict fields that legitimately differ between hosts/runs.
HOST_DEPENDENT = {"wall_time_s"}


def _comparable(result) -> dict:
    return {
        k: v
        for k, v in result.to_json_dict().items()
        if k not in HOST_DEPENDENT
    }


class TestFabricExecutor:
    WORKLOADS = ["hmmer", "GemsFDTD"]
    SCHEMES = [Scheme.STATIC_7]

    def test_bit_identical_to_serial(self, tmp_path):
        serial = ExperimentRunner(
            tiny_config(),
            workloads=self.WORKLOADS,
            schemes=self.SCHEMES,
            max_events=FAST,
        )
        serial.run_all()
        fabric = ExperimentRunner(
            tiny_config(),
            workloads=self.WORKLOADS,
            schemes=self.SCHEMES,
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
        )
        fabric.run_all()
        assert set(serial.results) == set(fabric.results)
        for key in serial.results:
            assert _comparable(serial.results[key]) == _comparable(
                fabric.results[key]
            ), key
        stats = fabric.fabric_stats
        assert stats.n_workers == 2
        assert stats.jobs_completed == 2
        assert stats.jobs_failed == 0
        assert stats.wall_s > 0
        assert 0.0 < stats.utilization <= 1.0
        # A healthy run drops no worker events, and the counter is part
        # of the stats surface so a sick event channel is visible.
        assert stats.events_dropped == 0
        assert stats.as_dict()["events_dropped"] == 0

    def test_crash_injection_recovers(self, tmp_path):
        plan = FaultPlan.parse(["crash:0:1"])
        events = []
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7, Scheme.RRM],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
            fault_plan=plan,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.001),
            on_event=lambda name, args: events.append(name),
        )
        runner.run_all()
        assert len(runner.results) == 2 and not runner.failures
        assert runner.fabric_stats.respawns >= 1
        assert "job.retry" in events and "fabric.respawn" in events
        # The journal records the crashed first attempt as claim #1 and
        # the successful rerun as claim #2 — deterministic attempts.
        contents = ResultJournal.load(tmp_path / "j.jsonl")
        crashed_key = next(
            key for key, claims in contents.claims.items() if len(claims) > 1
        )
        assert len(contents.claims[crashed_key]) == 2

    def test_exhausted_retries_become_failure(self, tmp_path):
        plan = FaultPlan.parse(["crash:0"])  # crash every attempt
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
            fault_plan=plan,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.001),
        )
        runner.run_all()
        assert not runner.results
        failed = runner.failures[("hmmer", Scheme.STATIC_7)]
        assert failed.kind == "crash"

    def test_resume_composes_with_jobs(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        first = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7, Scheme.RRM],
            max_events=FAST,
            n_jobs=2,
            journal_path=journal,
        )
        first.run_all()
        # Drop one result, as an interrupted sweep would have.
        lines = [
            line
            for line in journal.read_text().splitlines()
            if not (
                json.loads(line).get("type") == "result"
                and json.loads(line).get("scheme") == Scheme.RRM.value
            )
        ]
        journal.write_text("\n".join(lines) + "\n")
        second = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7, Scheme.RRM],
            max_events=FAST,
            n_jobs=2,
            journal_path=journal,
        )
        second.resume()
        assert set(second.results) == set(first.results)
        # Only the dropped cell re-ran.
        assert second.fabric_stats.jobs_completed == 1

    def test_ledger_shards_merge_to_sweep_order(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        runner = ExperimentRunner(
            tiny_config(),
            workloads=self.WORKLOADS,
            schemes=self.SCHEMES,
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
            ledger_path=ledger_path,
        )
        runner.run_all()
        entries = RunLedger.load(ledger_path)
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        assert len(entries) == 2
        assert all(e.kind == KIND_SWEEP for e in entries)
        assert all("sim_events_per_sec" in e.metrics for e in entries)
        # No stray part files left behind.
        assert list(tmp_path.glob("*.part.jsonl")) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            FabricExecutor(0)
        with pytest.raises(ConfigError):
            FabricExecutor(2, lease_s=0)
        with pytest.raises(ConfigError):
            FabricExecutor(2, timeout_s=-1)


# ----------------------------------------------------------------------
# Ledger merge + throughput metrics
# ----------------------------------------------------------------------
class TestLedgerSatellites:
    def _entry(self, name, recorded, **metrics):
        return LedgerEntry(
            kind=KIND_SWEEP, name=name, metrics=metrics,
            recorded_unix_s=recorded,
        )

    def test_merge_ledgers_sorts_and_dedupes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ledger_a, ledger_b = RunLedger(a), RunLedger(b)
        ledger_a.append(self._entry("w2/rrm", 5.0, ipc=1.0))
        ledger_a.append(self._entry("w1/rrm", 6.0, ipc=2.0))
        # Duplicate cell from a lease-expiry race: first record wins.
        ledger_b.append(self._entry("w1/rrm", 7.0, ipc=2.0))
        out = tmp_path / "merged.jsonl"
        merged = merge_ledgers(
            [a, b, tmp_path / "missing.jsonl"], out
        )
        assert [e.name for e in merged] == ["w1/rrm", "w2/rrm"]
        assert len(RunLedger.load(out)) == 2

    def test_from_result_records_throughput(self):
        result = run_workload(
            tiny_config(), "hmmer", Scheme.STATIC_7, max_events=FAST
        )
        entry = LedgerEntry.from_result(result, tiny_config())
        assert entry.metrics["sim_events"] == float(result.sim_events)
        assert entry.metrics["sim_events_per_sec"] == pytest.approx(
            result.sim_events / result.wall_time_s
        )
        # The reporting view stays unchanged — sim_events is not a
        # simulation statistic and must not widen the bit-identity
        # comparison surface.
        assert "sim_events" not in result.as_dict()

    def test_sim_events_round_trips_through_journal(self):
        result = run_workload(
            tiny_config(), "hmmer", Scheme.STATIC_7, max_events=FAST
        )
        assert result.sim_events > 0
        from repro.sim.metrics import SimResult

        again = SimResult.from_json_dict(result.to_json_dict())
        assert again.sim_events == result.sim_events
        # Legacy journal records (no sim_events) still load.
        legacy = result.to_json_dict()
        legacy.pop("sim_events")
        assert SimResult.from_json_dict(legacy).sim_events == 0


# ----------------------------------------------------------------------
# Advisory gate rules
# ----------------------------------------------------------------------
class TestAdvisoryGate:
    def test_report_only_regression_is_advisory_and_exits_zero(self):
        rules = [
            GateRule("sim_events_per_sec", "up", 0.5, report_only=True),
            GateRule("ipc", "up", 0.01),
        ]
        baseline = {"cell": {"sim_events_per_sec": [1000.0], "ipc": [1.0]}}
        current = {"cell": {"sim_events_per_sec": [100.0], "ipc": [1.0]}}
        report = compare_samples(baseline, current, rules=rules)
        assert [v.metric for v in report.advisories] == ["sim_events_per_sec"]
        assert not report.regressions
        assert report.exit_code() == 0
        assert "ADVISORY" in report.format_text()

    def test_hard_rule_still_gates(self):
        rules = [GateRule("ipc", "up", 0.01)]
        report = compare_samples(
            {"cell": {"ipc": [1.0]}}, {"cell": {"ipc": [0.5]}}, rules=rules
        )
        assert report.exit_code() == 1

    def test_default_rules_make_throughput_advisory(self):
        baseline = {"cell": {"sim_events_per_sec": [1000.0]}}
        current = {"cell": {"sim_events_per_sec": [100.0]}}
        report = compare_samples(baseline, current)
        assert report.advisories and report.exit_code() == 0


# ----------------------------------------------------------------------
# SweepProgress concurrency
# ----------------------------------------------------------------------
class _ReentrancySpyStream(io.StringIO):
    """A fake TTY that detects interleaved writes from two threads."""

    def __init__(self) -> None:
        super().__init__()
        self._inside = threading.Semaphore(1)
        self.torn = False

    def isatty(self) -> bool:
        return True

    def write(self, text: str) -> int:
        if not self._inside.acquire(blocking=False):
            self.torn = True
        try:
            time.sleep(0.0002)  # widen the race window
            return super().write(text)
        finally:
            self._inside.release()


class TestSweepProgressConcurrency:
    def test_concurrent_emits_do_not_tear(self):
        stream = _ReentrancySpyStream()
        progress = SweepProgress(100, stream=stream)
        threads = [
            threading.Thread(
                target=lambda: [
                    progress.on_event("job.result", {}) for _ in range(25)
                ]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not stream.torn
        assert progress.completed == 100

    def test_line_writer_serializes_close(self):
        stream = _ReentrancySpyStream()
        writer = _LineWriter(stream)
        writer.emit("hello")
        writer.close()
        assert stream.getvalue().endswith("\n")


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_round_trips_through_json(self):
        spec = SweepSpec.make(
            config_name="tiny", seed=3, workloads=["hmmer"],
            schemes=["rrm"], max_events=1000, jobs=4,
        )
        again = SweepSpec.from_json_dict(spec.to_json_dict())
        assert again == spec
        assert spec.keys() == [("hmmer", Scheme.RRM.value)]

    def test_defaults_to_full_matrix(self):
        spec = SweepSpec.make(config_name="tiny")
        assert len(spec.workloads) > 1 and len(spec.schemes) > 1

    def test_rejects_bad_specs(self):
        with pytest.raises(ConfigError):
            SweepSpec.make(config_name="nope")
        with pytest.raises(ConfigError):
            SweepSpec.make(config_name="tiny", jobs=0)
        with pytest.raises(ConfigError):
            SweepSpec.from_json_dict({"config": "tiny", "bogus": 1})
        with pytest.raises(ConfigError):
            SweepSpec.from_json_dict({"schemes": ["not-a-scheme"]})

    def test_build_config_applies_duration_and_seed(self):
        spec = SweepSpec.make(config_name="tiny", seed=9, duration_s=0.001)
        config = spec.build_config()
        assert config.seed == 9
        assert config.duration_s == pytest.approx(0.001)


# ----------------------------------------------------------------------
# Protocol + serve round-trip
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
        assert parse_address(":9000") == ("tcp", ("127.0.0.1", 9000))
        with pytest.raises(ProtocolError):
            parse_address("host:notaport")
        with pytest.raises(ProtocolError):
            parse_address("")


class TestServe:
    def test_submit_watch_status_shutdown(self, tmp_path):
        address = tmp_path / "srv.sock"
        server = FabricServer(address, tmp_path / "journals").start()
        try:
            client = FabricClient(address, timeout_s=120)
            assert client.ping()["version"] == 1
            spec = SweepSpec.make(
                config_name="tiny", workloads=["hmmer"],
                schemes=["static-7"], max_events=FAST, jobs=2,
            )
            messages = list(client.submit_and_watch(spec))
            acknowledgement = messages[0]
            assert acknowledgement["ok"] and acknowledgement["sweep"] == "sweep-001"
            names = [m.get("event") for m in messages[1:]]
            assert names[0] == "sweep.queued"
            assert "sweep.started" in names
            assert "ledger.entry" in names
            assert names[-1] == "sweep.finished"
            ledger_events = [
                m for m in messages if m.get("event") == "ledger.entry"
            ]
            assert ledger_events[0]["entry"]["metrics"]["ipc"] > 0

            # A late watcher replays the full history.
            replay = list(client.watch("sweep-001"))
            assert [m.get("event") for m in replay[1:]] == names

            status = client.status()
            assert status[0]["state"] == "finished"
            assert status[0]["completed"] == 1
            journal = tmp_path / "journals" / "sweep-001.jsonl"
            assert journal.exists()
            contents = ResultJournal.load(journal)
            assert len(contents.results) == 1
            assert (tmp_path / "journals" / "sweep-001.ledger.jsonl").exists()

            client.shutdown()
            server.wait(10)
        finally:
            server.stop()

    def test_bad_requests_get_errors_not_disconnects(self, tmp_path):
        from repro.fabric import LineChannel, connect

        address = tmp_path / "srv.sock"
        server = FabricServer(address, tmp_path / "journals").start()
        try:
            client = FabricClient(address, timeout_s=30)
            with pytest.raises(ProtocolError, match="unknown sweep"):
                list(client.watch("sweep-999"))
            # Malformed requests get structured errors and the
            # connection stays usable for the next request.
            with LineChannel(connect(address, timeout_s=30)) as channel:
                channel.send({"op": "submit", "spec": {"config": "nope"}})
                response = channel.recv()
                assert response["ok"] is False
                assert "unknown config" in response["error"]
                channel.send({"op": "bogus"})
                response = channel.recv()
                assert response["ok"] is False
                assert "unknown op" in response["error"]
                channel.send({"op": "ping"})
                assert channel.recv()["ok"] is True
        finally:
            server.stop()

    def test_gate_verdict_streams_with_baseline(self, tmp_path):
        from repro.obs.gate import write_baseline

        # A baseline whose ipc is absurdly high forces a regression
        # verdict; the event must still stream and the sweep still
        # finishes (the gate reports, the server doesn't fail sweeps).
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path,
            {"hmmer/Static-7-SETs": {"ipc": [1e9]}},
        )
        address = tmp_path / "srv.sock"
        server = FabricServer(
            address, tmp_path / "journals", baseline_path=baseline_path
        ).start()
        try:
            client = FabricClient(address, timeout_s=120)
            spec = SweepSpec.make(
                config_name="tiny", workloads=["hmmer"],
                schemes=["static-7"], max_events=FAST,
            )
            messages = list(client.submit_and_watch(spec))
            verdicts = [
                m for m in messages if m.get("event") == "gate.verdict"
            ]
            assert len(verdicts) == 1
            assert verdicts[0]["counts"].get("regression", 0) >= 1
            assert messages[-1]["state"] == "finished"
        finally:
            server.stop()
