"""Tests for workload event encoding."""

import pytest

from repro.workloads.events import (
    EV_READ,
    EV_REGISTER,
    EV_WRITE,
    event_kind_name,
)


class TestKinds:
    def test_kinds_distinct(self):
        assert len({EV_READ, EV_WRITE, EV_REGISTER}) == 3

    @pytest.mark.parametrize(
        "kind,name",
        [(EV_READ, "read"), (EV_WRITE, "write"), (EV_REGISTER, "register")],
    )
    def test_names(self, kind, name):
        assert event_kind_name(kind) == name

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_kind_name(99)
