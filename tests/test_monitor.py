"""Tests for the Region Retention Monitor behaviour (paper Section IV)."""

import pytest

from repro.core.config import RRMConfig
from repro.core.monitor import RegionRetentionMonitor
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.memctrl.request import RequestType
from repro.utils.units import s_to_ns


class StubController:
    """Records refresh requests; can simulate a full queue."""

    def __init__(self, accept=True):
        self.accept = accept
        self.requests = []
        self.waiters = []

    def can_accept(self, rtype, block):
        return self.accept

    def enqueue(self, request):
        self.requests.append(request)

    def notify_space(self, rtype, block, callback):
        self.waiters.append(callback)

    def release(self):
        self.accept = True
        waiters, self.waiters = self.waiters, []
        for cb in waiters:
            cb()


@pytest.fixture
def monitor(rrm_config, modes):
    return RegionRetentionMonitor(rrm_config, modes)


def make_hot(monitor, region=0, block_offset=0):
    """Register enough dirty writes to promote *region*."""
    block = region * monitor.config.blocks_per_region + block_offset
    for _ in range(monitor.config.hot_threshold):
        monitor.register_llc_write(block, was_dirty=True)
    return block


class TestRegistration:
    def test_clean_writes_filtered(self, monitor):
        monitor.register_llc_write(0, was_dirty=False)
        assert monitor.stats.clean_writes_filtered == 1
        assert monitor.stats.registrations == 0
        assert monitor.tags.occupancy == 0

    def test_dirty_write_allocates_entry(self, monitor):
        monitor.register_llc_write(0, was_dirty=True)
        assert monitor.tags.occupancy == 1
        assert monitor.stats.registrations == 1

    def test_promotion_at_threshold(self, monitor):
        make_hot(monitor)
        assert monitor.stats.promotions == 1
        entry = monitor.tags.lookup(0, touch=False)
        assert entry.hot

    def test_vector_bit_set_only_while_hot(self, monitor):
        block = 5
        # 15 dirty writes: not yet hot, vector empty.
        for _ in range(monitor.config.hot_threshold - 1):
            monitor.register_llc_write(block, was_dirty=True)
        entry = monitor.tags.lookup(0, touch=False)
        assert entry.short_retention_vector == 0
        # 16th write promotes; the *same* registration sets the bit.
        monitor.register_llc_write(block, was_dirty=True)
        assert entry.vector_bit(5)

    def test_registrations_in_different_regions_are_independent(self, monitor):
        make_hot(monitor, region=0)
        monitor.register_llc_write(
            3 * monitor.config.blocks_per_region, was_dirty=True
        )
        entry3 = monitor.tags.lookup(3, touch=False)
        assert not entry3.hot


class TestModeDecision:
    def test_untracked_block_is_slow(self, monitor):
        assert monitor.decide_write_mode(123456) == 7
        assert monitor.stats.slow_decisions == 1

    def test_hot_block_with_bit_is_fast(self, monitor):
        block = make_hot(monitor, block_offset=4)
        assert monitor.decide_write_mode(block) == 3
        assert monitor.stats.fast_decisions == 1

    def test_hot_region_other_block_stays_slow(self, monitor):
        make_hot(monitor, block_offset=4)
        # Block 9 of the same region never registered while hot.
        assert monitor.decide_write_mode(9) == 7

    def test_decision_does_not_touch_lru(self, monitor, rrm_config):
        """Write-mode lookups must not refresh recency (only
        registrations do)."""
        regions = [i * rrm_config.n_sets for i in range(rrm_config.n_ways)]
        for region in regions:
            monitor.register_llc_write(
                region * rrm_config.blocks_per_region, was_dirty=True
            )
        monitor.decide_write_mode(regions[0] * rrm_config.blocks_per_region)
        # Allocating one more evicts the genuinely-oldest region 0.
        monitor.register_llc_write(
            regions[-1] * rrm_config.blocks_per_region
            + rrm_config.n_sets * rrm_config.blocks_per_region,
            was_dirty=True,
        )
        assert monitor.tags.lookup(regions[0], touch=False) is None

    def test_fast_write_fraction_stat(self, monitor):
        block = make_hot(monitor)
        monitor.decide_write_mode(block)
        monitor.decide_write_mode(999999)
        assert monitor.stats.fast_write_fraction == pytest.approx(0.5)


class TestSelectiveFastRefresh:
    def test_refresh_covers_all_hot_vector_bits(self, rrm_config, modes):
        controller = StubController()
        monitor = RegionRetentionMonitor(rrm_config, modes, controller=controller)
        make_hot(monitor, region=0, block_offset=0)
        monitor.register_llc_write(3, was_dirty=True)  # second bit, same region
        monitor.on_refresh_interrupt()
        fast = [r for r in controller.requests if r.rtype is RequestType.RRM_REFRESH]
        assert {r.block for r in fast} == {0, 3}
        assert all(r.n_sets == 3 for r in fast)

    def test_cold_entries_not_refreshed(self, rrm_config, modes):
        controller = StubController()
        monitor = RegionRetentionMonitor(rrm_config, modes, controller=controller)
        monitor.register_llc_write(0, was_dirty=True)  # cold entry
        monitor.on_refresh_interrupt()
        assert controller.requests == []

    def test_refresh_backpressure_holds_pending(self, rrm_config, modes):
        controller = StubController(accept=False)
        monitor = RegionRetentionMonitor(rrm_config, modes, controller=controller)
        make_hot(monitor)
        monitor.on_refresh_interrupt()
        assert monitor.pending_refresh_count == 1
        controller.release()
        assert monitor.pending_refresh_count == 0
        assert len(controller.requests) == 1

    def test_interrupt_counter(self, monitor):
        monitor.on_refresh_interrupt()
        monitor.on_refresh_interrupt()
        assert monitor.stats.refresh_interrupts == 2


class TestDecay:
    def _tick_full_interval(self, monitor):
        for _ in range(monitor.config.decay_ticks_per_interval):
            monitor.on_decay_tick()

    def test_idle_hot_entry_demoted_with_slow_refresh(self, rrm_config, modes):
        controller = StubController()
        monitor = RegionRetentionMonitor(rrm_config, modes, controller=controller)
        block = make_hot(monitor)
        # First wrap: counter saturated -> stays hot, halves.
        self._tick_full_interval(monitor)
        assert monitor.stats.renewals == 1
        # Second wrap with no further writes -> demote.
        self._tick_full_interval(monitor)
        assert monitor.stats.demotions == 1
        entry = monitor.tags.lookup(0, touch=False)
        assert not entry.hot
        slow = [
            r for r in controller.requests
            if r.rtype is RequestType.RRM_SLOW_REFRESH
        ]
        assert [r.block for r in slow] == [block]
        assert slow[0].n_sets == 7

    def test_active_entry_stays_hot(self, monitor):
        block = make_hot(monitor)
        for _ in range(3):
            self._tick_full_interval(monitor)
            # Keep writing: refill the halved counter.
            for _ in range(monitor.config.hot_threshold):
                monitor.register_llc_write(block, was_dirty=True)
        assert monitor.stats.demotions == 0
        assert monitor.tags.lookup(0, touch=False).hot

    def test_decayed_block_write_mode_reverts_to_slow(self, monitor):
        block = make_hot(monitor)
        assert monitor.decide_write_mode(block) == 3
        self._tick_full_interval(monitor)
        self._tick_full_interval(monitor)
        assert monitor.decide_write_mode(block) == 7


class TestEviction:
    def test_evicted_hot_entry_triggers_slow_refresh(self, rrm_config, modes):
        controller = StubController()
        monitor = RegionRetentionMonitor(rrm_config, modes, controller=controller)
        hot_block = make_hot(monitor, region=0)
        # Fill set 0 beyond capacity with cold regions; region 0 is LRU.
        for way in range(1, rrm_config.n_ways + 1):
            region = way * rrm_config.n_sets
            monitor.register_llc_write(
                region * rrm_config.blocks_per_region, was_dirty=True
            )
        assert monitor.stats.evictions_with_fast_blocks == 1
        slow = [
            r for r in controller.requests
            if r.rtype is RequestType.RRM_SLOW_REFRESH
        ]
        assert [r.block for r in slow] == [hot_block]

    def test_eviction_refresh_can_be_disabled(self, modes):
        config = RRMConfig(n_sets=4, n_ways=4, refresh_on_eviction=False)
        controller = StubController()
        monitor = RegionRetentionMonitor(config, modes, controller=controller)
        make_hot(monitor, region=0)
        for way in range(1, config.n_ways + 1):
            monitor.register_llc_write(
                way * config.n_sets * config.blocks_per_region, was_dirty=True
            )
        assert monitor.stats.evictions_with_fast_blocks == 1
        assert controller.requests == []


class TestTimers:
    def test_paper_intervals(self, rrm_config, modes):
        monitor = RegionRetentionMonitor(rrm_config, modes)
        assert monitor.refresh_interval_s == pytest.approx(2.0, rel=0.01)
        assert monitor.decay_period_s == pytest.approx(
            monitor.refresh_interval_s / 16
        )

    def test_start_requires_simulator(self, monitor):
        with pytest.raises(ConfigError):
            monitor.start()

    def test_start_arms_periodic_events(self, rrm_config, modes):
        sim = Simulator()
        controller = StubController()
        monitor = RegionRetentionMonitor(
            rrm_config, modes, sim=sim, controller=controller
        )
        monitor.start()
        make_hot(monitor)
        sim.run(until=s_to_ns(monitor.refresh_interval_s * 2.5))
        assert monitor.stats.refresh_interrupts == 2
        assert monitor.stats.decay_ticks >= 32

    def test_double_start_rejected(self, rrm_config, modes):
        monitor = RegionRetentionMonitor(rrm_config, modes, sim=Simulator())
        monitor.start()
        with pytest.raises(ConfigError):
            monitor.start()
