"""Tests for the resistance-drift model (paper Table I reproduction)."""

import pytest

from repro.errors import ConfigError
from repro.pcm.drift import (
    MAX_SET_ITERATIONS,
    MIN_SET_ITERATIONS,
    DriftModel,
    DriftParameters,
)

#: Paper Table I retention times, by SET count.
PAPER_RETENTION_S = {3: 2.01, 4: 24.05, 5: 104.4, 6: 991.4, 7: 3054.9}


class TestTableIReproduction:
    @pytest.mark.parametrize("n_sets,expected", sorted(PAPER_RETENTION_S.items()))
    def test_retention_matches_paper(self, n_sets, expected):
        model = DriftModel()
        assert model.retention_seconds(n_sets) == pytest.approx(expected, rel=0.005)

    def test_retention_monotonic_in_sets(self):
        model = DriftModel()
        retentions = [
            model.retention_seconds(n)
            for n in range(MIN_SET_ITERATIONS, MAX_SET_ITERATIONS + 1)
        ]
        assert retentions == sorted(retentions)
        assert retentions[0] < retentions[-1] / 100


class TestPowerLaw:
    def test_no_drift_before_t0(self):
        model = DriftModel()
        assert model.resistance_ratio(0.0) == 1.0
        assert model.resistance_ratio(0.5) == 1.0

    def test_ratio_grows_as_power_law(self):
        model = DriftModel()
        r10 = model.resistance_ratio(10.0)
        r1000 = model.resistance_ratio(1000.0)
        # Two decades of time -> 2*nu decades of resistance.
        assert r1000 / r10 == pytest.approx(10 ** (2 * model.params.nu), rel=1e-9)

    def test_drift_decades_log_of_ratio(self):
        model = DriftModel()
        assert model.drift_decades(100.0) == pytest.approx(
            model.params.nu * 2, rel=1e-9
        )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            DriftModel().resistance_ratio(-1.0)


class TestMargins:
    def test_margin_increases_with_sets(self):
        model = DriftModel()
        margins = [model.margin_decades(n) for n in range(3, 8)]
        assert margins == sorted(margins)

    def test_margin_retention_roundtrip(self):
        model = DriftModel()
        for n in range(3, 8):
            margin = model.margin_decades(n)
            retention = model.retention_from_margin(margin)
            assert model.margin_for_retention(retention) == pytest.approx(margin)

    def test_sigma_decreases_with_sets(self):
        model = DriftModel()
        sigmas = [model.programming_sigma(n) for n in range(3, 8)]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_out_of_range_sets_rejected(self):
        model = DriftModel()
        for bad in (2, 8, 0, -1):
            with pytest.raises(ConfigError):
                model.retention_seconds(bad)


class TestDataValidity:
    def test_data_valid_within_retention(self):
        model = DriftModel()
        assert model.data_valid(3, 1.0)
        assert model.data_valid(7, 3000.0)

    def test_data_invalid_after_retention(self):
        model = DriftModel()
        assert not model.data_valid(3, 3.0)
        assert not model.data_valid(7, 4000.0)

    def test_validity_boundary_matches_retention(self):
        model = DriftModel()
        retention = model.retention_seconds(5)
        assert model.data_valid(5, retention * 0.99)
        assert not model.data_valid(5, retention * 1.01)


class TestDriftScale:
    def test_scale_divides_retention(self):
        base = DriftModel()
        scaled = DriftModel(DriftParameters(drift_scale=50.0))
        for n in range(3, 8):
            assert scaled.retention_seconds(n) == pytest.approx(
                base.retention_seconds(n) / 50.0
            )

    def test_scale_preserves_mode_ratios(self):
        base = DriftModel()
        scaled = DriftModel(DriftParameters(drift_scale=25.0))
        assert scaled.retention_seconds(7) / scaled.retention_seconds(3) == (
            pytest.approx(base.retention_seconds(7) / base.retention_seconds(3))
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            DriftParameters(drift_scale=0.0)


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nu": 0.0},
            {"nu": -0.1},
            {"t0": 0.0},
            {"guardband_decades": 0.0},
            {"sigma_multiplier": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DriftParameters(**kwargs)

    def test_tiny_guardband_leaves_no_margin(self):
        model = DriftModel(DriftParameters(guardband_decades=0.01))
        with pytest.raises(ConfigError):
            model.margin_decades(3)
