"""Tests for trace file I/O."""

import itertools

import pytest

from repro.errors import TraceFormatError
from repro.workloads.events import EV_READ, EV_REGISTER, EV_WRITE
from repro.workloads.synthetic import RegionProfile, RegionTrafficGenerator
from repro.workloads.trace import TraceReader, TraceRecord, TraceWriter, write_trace


SAMPLE_EVENTS = [
    (EV_READ, 37, 1024, False),
    (EV_REGISTER, 0, 2048, True),
    (EV_WRITE, 0, 2048, False),
    (EV_REGISTER, 0, 4096, False),
]


class TestRecord:
    def test_format_parse_roundtrip(self):
        for event in SAMPLE_EVENTS:
            record = TraceRecord(*event)
            assert TraceRecord.parse(record.format()).as_event() == event

    def test_parse_rejects_wrong_field_count(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.parse("read 1 2")

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.parse("fetch 1 2 0")

    def test_parse_rejects_bad_integers(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.parse("read x 2 0")

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.parse("read -1 2 0")
        with pytest.raises(TraceFormatError):
            TraceRecord.parse("read 1 2 2")


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "t.trace"
        count = write_trace(path, SAMPLE_EVENTS, header="sample events")
        assert count == len(SAMPLE_EVENTS)
        assert list(TraceReader(path)) == SAMPLE_EVENTS

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, SAMPLE_EVENTS, header="line one\nline two")
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# comment\n\nread 5 10 0\n")
        assert list(TraceReader(path)) == [(EV_READ, 5, 10, False)]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            TraceReader(tmp_path / "nope.trace")

    def test_writer_outside_context_rejected(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.trace")
        with pytest.raises(TraceFormatError):
            writer.write_event(SAMPLE_EVENTS[0])

    def test_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("read 5 10 0\ngarbage\n")
        reader = TraceReader(path)
        with pytest.raises(TraceFormatError, match="line 2"):
            list(reader)


class TestGeneratorCapture:
    def test_generated_stream_replays_identically(self, tmp_path):
        profile = RegionProfile(
            mpki=20.0, footprint_regions=256, hot_regions=8, warm_regions=32
        )
        generator = RegionTrafficGenerator(profile, seed=3)
        events = list(itertools.islice(iter(generator), 2000))
        path = tmp_path / "gen.trace"
        write_trace(path, events)
        assert list(TraceReader(path)) == events
