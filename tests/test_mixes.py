"""Tests for workload composition."""

import pytest

from repro.errors import ConfigError
from repro.workloads.mixes import (
    MIXES,
    all_workload_names,
    mix_profiles,
    workload_profiles,
)


class TestMixes:
    def test_paper_mix_membership(self):
        assert MIXES["MIX_1"] == ["mcf", "bwaves", "zeusmp", "milc"]
        assert MIXES["MIX_2"] == ["GemsFDTD", "libquantum", "lbm", "leslie3d"]

    def test_mix_profiles_resolved(self):
        profiles = mix_profiles("MIX_1")
        assert [p.name for p in profiles] == ["mcf", "bwaves", "zeusmp", "milc"]

    def test_unknown_mix(self):
        with pytest.raises(ConfigError):
            mix_profiles("MIX_9")


class TestWorkloadProfiles:
    def test_single_benchmark_replicated(self):
        profiles = workload_profiles("GemsFDTD", n_cores=4)
        assert len(profiles) == 4
        assert all(p.name == "GemsFDTD" for p in profiles)

    def test_mix_requires_matching_core_count(self):
        with pytest.raises(ConfigError):
            workload_profiles("MIX_1", n_cores=2)

    def test_mix_resolves(self):
        profiles = workload_profiles("MIX_2", n_cores=4)
        assert [p.name for p in profiles] == MIXES["MIX_2"]

    def test_two_core_single_benchmark(self):
        assert len(workload_profiles("hmmer", n_cores=2)) == 2


class TestWorkloadNames:
    def test_eleven_workloads(self):
        names = all_workload_names()
        assert len(names) == 11
        assert "MIX_1" in names and "MIX_2" in names
        assert "GemsFDTD" in names
