"""Additional property-based tests for the newer substrates.

Covers the Start-Gap remapper (bijectivity under arbitrary move
sequences, wear conservation) and the Region Retention Monitor's
state-machine invariants under random registration streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RRMConfig
from repro.core.monitor import RegionRetentionMonitor
from repro.pcm.wear_leveling import LeveledWearSimulator, StartGapLeveler
from repro.pcm.write_modes import WriteModeTable

MODES = WriteModeTable()


# ----------------------------------------------------------------------
# Start-Gap
# ----------------------------------------------------------------------
@given(
    n_lines=st.integers(min_value=1, max_value=32),
    moves=st.integers(min_value=0, max_value=200),
)
def test_startgap_bijective_after_any_moves(n_lines, moves):
    leveler = StartGapLeveler(n_lines=n_lines, gap_write_interval=1)
    for _ in range(moves):
        leveler.record_write()
    slots = [leveler.physical(logical) for logical in range(n_lines)]
    assert len(set(slots)) == n_lines
    assert leveler.gap not in slots
    assert all(0 <= slot <= n_lines for slot in slots)
    # Inverse mapping agrees.
    for logical in range(n_lines):
        assert leveler.logical(leveler.physical(logical)) == logical


@given(
    n_lines=st.integers(min_value=2, max_value=16),
    writes=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=300),
    interval=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50)
def test_startgap_wear_conservation(n_lines, writes, interval):
    """Total physical wear = demand writes + gap-move copies."""
    writes = [w % n_lines for w in writes]
    simulator = LeveledWearSimulator(
        StartGapLeveler(n_lines=n_lines, gap_write_interval=interval)
    )
    for line in writes:
        simulator.write(line)
    expected = len(writes) + simulator.leveler.gap_moves
    assert simulator.total_writes() == expected


@given(n_lines=st.integers(min_value=1, max_value=16))
def test_startgap_full_rotation_returns_to_shifted_identity(n_lines):
    """After exactly one full rotation, every line has moved by one slot
    (the start pointer advanced once)."""
    leveler = StartGapLeveler(n_lines=n_lines, gap_write_interval=1)
    initial = [leveler.physical(l) for l in range(n_lines)]
    for _ in range(n_lines + 1):
        leveler.record_write()
    assert leveler.rotations == 1
    after = [leveler.physical(l) for l in range(n_lines)]
    assert after != initial or n_lines == 1
    assert len(set(after)) == n_lines


# ----------------------------------------------------------------------
# Monitor state machine
# ----------------------------------------------------------------------
@given(
    stream=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),  # block
            st.booleans(),                            # dirty
            st.booleans(),                            # decay tick after?
        ),
        min_size=1,
        max_size=400,
    )
)
@settings(max_examples=50, deadline=None)
def test_monitor_invariants_under_random_streams(stream):
    config = RRMConfig(n_sets=2, n_ways=2, hot_threshold=4)
    monitor = RegionRetentionMonitor(config, MODES)
    for block, dirty, tick in stream:
        monitor.register_llc_write(block, was_dirty=dirty)
        if tick:
            monitor.on_decay_tick()
        # Invariants after every step:
        for entry in monitor.tags.entries():
            # Counter saturates at the threshold.
            assert 0 <= entry.dirty_write_counter <= config.hot_threshold
            # Cold entries never carry short-retention bits... unless they
            # were hot and demoted (which clears them) — so any bits imply
            # the entry is (or was just) hot. After demotion the vector is
            # cleared, so: bits set => hot.
            if entry.short_retention_vector:
                assert entry.hot
            # Decay counter stays inside its field width.
            assert 0 <= entry.decay_counter < config.decay_ticks_per_interval

    # The structure never exceeds its geometry.
    assert monitor.tags.occupancy <= config.n_entries


@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=4, max_size=64)
)
@settings(max_examples=50)
def test_monitor_mode_decision_consistent_with_vector(blocks):
    """decide_write_mode returns fast exactly for blocks whose bit is set."""
    config = RRMConfig(n_sets=2, n_ways=2, hot_threshold=2)
    monitor = RegionRetentionMonitor(config, MODES)
    for block in blocks:
        monitor.register_llc_write(block, was_dirty=True)
    for block in set(blocks):
        region = config.region_of_block(block)
        entry = monitor.tags.lookup(region, touch=False)
        mode = monitor.decide_write_mode(block)
        if entry is not None and entry.vector_bit(config.block_offset(block)):
            assert mode == config.fast_n_sets
        else:
            assert mode == config.slow_n_sets
