"""Tests for the region write-interval analysis (paper Table III)."""

import pytest

from repro.analysis.regions import PAPER_BINS, RegionIntervalAnalyzer
from repro.errors import ConfigError
from repro.utils.units import NS_PER_S


class TestRecording:
    def test_regions_grouped_by_4kb(self):
        analyzer = RegionIntervalAnalyzer()
        analyzer.record(0.0, 0)
        analyzer.record(10.0, 63)   # same region
        analyzer.record(20.0, 64)   # next region
        assert analyzer.regions_written == 2
        assert analyzer.total_writes == 3

    def test_average_interval(self):
        analyzer = RegionIntervalAnalyzer()
        analyzer.record(0.0, 0)
        analyzer.record(100.0, 1)
        analyzer.record(200.0, 2)
        assert analyzer.average_interval_ns(0) == pytest.approx(100.0)

    def test_single_write_is_infinite_interval(self):
        analyzer = RegionIntervalAnalyzer()
        analyzer.record(0.0, 0)
        assert analyzer.average_interval_ns(0) == float("inf")

    def test_unseen_region_is_none(self):
        assert RegionIntervalAnalyzer().average_interval_ns(7) is None

    def test_drift_scale_rescales_intervals(self):
        analyzer = RegionIntervalAnalyzer(drift_scale=50.0)
        analyzer.record(0.0, 0)
        analyzer.record(100.0, 0)
        assert analyzer.average_interval_ns(0) == pytest.approx(5000.0)


class TestHistogram:
    def _populate(self, analyzer):
        # Region 0: interval 1e6 ns (2nd paper bin), 11 writes.
        for i in range(11):
            analyzer.record(i * 1e6, 0)
        # Region 1: written once.
        analyzer.record(0.0, 64)
        # Region 2: interval 0.5e6 ns (1st bin), 3 writes.
        for i in range(3):
            analyzer.record(i * 0.5e6, 128)

    def test_paper_bins_layout(self):
        labels = [b.label for b in PAPER_BINS]
        assert labels[0] == "< 10^6 ns"
        assert PAPER_BINS[-1].high_ns == 2 * NS_PER_S

    def test_rows_and_percentages(self):
        analyzer = RegionIntervalAnalyzer(total_regions=100)
        self._populate(analyzer)
        rows = {row.label: row for row in analyzer.histogram()}
        assert rows["< 10^6 ns"].regions == 1
        assert rows["< 10^6 ns"].writes == 3
        assert rows["10^6 ns to 10^7 ns"].regions == 1
        assert rows["10^6 ns to 10^7 ns"].writes == 11
        assert rows["written once"].regions == 1
        assert rows["never written"].regions == 97
        assert rows["never written"].region_pct == pytest.approx(97.0)

    def test_write_percentages_sum_to_100(self):
        analyzer = RegionIntervalAnalyzer(total_regions=100)
        self._populate(analyzer)
        total = sum(row.write_pct for row in analyzer.histogram())
        assert total == pytest.approx(100.0)

    def test_boundary_interval_lands_in_upper_bin(self):
        analyzer = RegionIntervalAnalyzer()
        analyzer.record(0.0, 0)
        analyzer.record(1e6, 0)  # exactly 10^6 -> second bin (inclusive low)
        rows = {row.label: row for row in analyzer.histogram()}
        assert rows["10^6 ns to 10^7 ns"].regions == 1

    def test_interval_beyond_bins_goes_to_overflow(self):
        analyzer = RegionIntervalAnalyzer()
        analyzer.record(0.0, 0)
        analyzer.record(3 * NS_PER_S, 0)
        rows = analyzer.histogram()
        overflow = [r for r in rows if r.label.startswith(">=")][0]
        assert overflow.regions == 1


class TestHotShare:
    def test_hot_share_cutoff(self):
        analyzer = RegionIntervalAnalyzer()
        # Hot region: 100 writes at 1ms interval.
        for i in range(100):
            analyzer.record(i * 1e6, 0)
        # Cold region: 2 writes 10 seconds apart.
        analyzer.record(0.0, 64)
        analyzer.record(10 * NS_PER_S, 64)
        share = analyzer.hot_write_share(interval_cutoff_ns=1e8)
        assert share == pytest.approx(100 / 102)

    def test_no_writes(self):
        assert RegionIntervalAnalyzer().hot_write_share() == 0.0


class TestValidation:
    def test_bad_region_bytes(self):
        with pytest.raises(ConfigError):
            RegionIntervalAnalyzer(region_bytes=100)

    def test_bad_drift_scale(self):
        with pytest.raises(ConfigError):
            RegionIntervalAnalyzer(drift_scale=0.0)
