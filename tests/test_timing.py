"""Tests for the PCM timing parameters (paper Table V)."""

import pytest

from repro.errors import ConfigError
from repro.pcm.timing import BUS_CYCLE_NS, PCMTimings


class TestDefaults:
    def test_bus_cycle_is_400mhz(self):
        assert BUS_CYCLE_NS == pytest.approx(2.5)

    def test_trcd_is_48_cycles(self):
        timings = PCMTimings()
        assert timings.t_rcd_ns == pytest.approx(120.0)

    def test_tcas_is_one_cycle(self):
        assert PCMTimings().t_cas_ns == pytest.approx(2.5)

    def test_tfaw(self):
        assert PCMTimings().t_faw_ns == pytest.approx(50.0)

    def test_burst_is_eight_cycles(self):
        assert PCMTimings().data_burst_ns == pytest.approx(20.0)

    def test_write_through_default(self):
        assert PCMTimings().write_through is True


class TestDerived:
    def test_row_hit_read(self):
        timings = PCMTimings()
        assert timings.row_hit_read_ns == pytest.approx(2.5 + 20.0)

    def test_row_miss_read(self):
        timings = PCMTimings()
        assert timings.row_miss_read_ns == pytest.approx(120.0 + 2.5 + 20.0)

    def test_miss_costs_more_than_hit(self):
        timings = PCMTimings()
        assert timings.row_miss_read_ns > timings.row_hit_read_ns


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["t_rcd_ns", "t_cas_ns", "t_faw_ns", "bus_cycle_ns", "data_burst_ns"],
    )
    def test_non_positive_rejected(self, field):
        with pytest.raises(ConfigError):
            PCMTimings(**{field: 0.0})
