"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "GemsFDTD"
        assert args.scheme == "rrm"
        assert args.config == "scaled"

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--workloads", "hmmer", "mcf", "--workers", "4"]
        )
        assert args.workloads == ["hmmer", "mcf"]
        assert args.workers == 4

    def test_sweep_resilience_options(self):
        args = build_parser().parse_args(
            ["sweep", "--timeout", "30", "--retries", "1",
             "--journal", "j.jsonl", "--resume",
             "--inject-faults", "crash:1", "hang:lbm/rrm:1"]
        )
        assert args.timeout == 30.0
        assert args.retries == 1
        assert args.journal == "j.jsonl"
        assert args.resume
        assert args.inject_faults == ["crash:1", "hang:lbm/rrm:1"]

    def test_sweep_resilience_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.timeout is None
        assert args.retries == 2
        assert args.journal is None
        assert not args.resume
        assert args.inject_faults is None
        assert args.trace is None

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_run_telemetry_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.trace is None
        assert args.metrics_interval is None
        assert args.trace_mode == "full"
        assert args.trace_ring_size == 100_000
        assert args.trace_sample_every == 1

    def test_run_telemetry_options(self):
        args = build_parser().parse_args(
            ["run", "--trace", "out.json", "--metrics-interval", "250us",
             "--trace-mode", "ring", "--trace-ring-size", "500"]
        )
        assert args.trace == "out.json"
        assert args.metrics_interval == "250us"
        assert args.trace_mode == "ring"
        assert args.trace_ring_size == 500

    def test_run_help_mentions_telemetry(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        assert "telemetry" in capsys.readouterr().out

    def test_trace_subcommand_options(self):
        args = build_parser().parse_args(["trace", "t.json", "--check"])
        assert args.file == ["t.json"]
        assert args.check
        assert args.top == 10

    def test_trace_diff_parses(self):
        args = build_parser().parse_args(["trace", "diff", "a.json", "b.json"])
        assert args.file == ["diff", "a.json", "b.json"]

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.baseline is None
        assert not args.update_baseline
        assert not args.strict

    def test_lint_options(self):
        args = build_parser().parse_args(
            ["lint", "src/repro", "benchmarks", "--format", "json",
             "--baseline", "b.json", "--strict"]
        )
        assert args.paths == ["src/repro", "benchmarks"]
        assert args.format == "json"
        assert args.baseline == "b.json"
        assert args.strict

    def test_lint_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "7-SETs-Write" in out
        # Retention of the slow mode: 3054.9s in the paper, reproduced to
        # within calibration error.
        assert "3055" in out or "3054.9" in out
        assert "1150" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        out = capsys.readouterr().out
        assert "96KB" in out and "1.56%" in out
        assert "4x (default)" in out

    def test_run_tiny(self, capsys):
        code = main(
            ["run", "--config", "tiny", "--workload", "hmmer", "--scheme", "static-7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hmmer" in out and "Static-7-SETs" in out

    def test_run_verbose(self, capsys):
        main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "static-3", "--verbose"]
        )
        out = capsys.readouterr().out
        assert "lifetime_years" in out

    def test_compare_two_schemes(self, capsys):
        code = main(
            ["compare", "--config", "tiny", "--workload", "hmmer",
             "--schemes", "static-7", "static-3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC normalised" in out
        assert "lifetime" in out.lower()

    def test_table3_tiny(self, capsys):
        code = main(["table3", "--config", "tiny", "--workload", "GemsFDTD"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Average Write Interval" in out
        assert "never written" in out

    def test_sensitivity_threshold(self, capsys):
        code = main(
            ["sensitivity", "--config", "tiny", "--parameter", "threshold",
             "--workloads", "hmmer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot_threshold=8" in out and "hot_threshold=64" in out

    def test_sweep_json_output(self, capsys, tmp_path):
        out_file = tmp_path / "r.json"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()

    def test_sweep_resume_requires_journal(self, capsys):
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--resume"]
        )
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_sweep_with_injected_crash_degrades(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "static-3", "--retries", "0",
             "--inject-faults", "crash:1", "--journal", str(journal)]
        )
        assert code == 0  # degraded completion still succeeds
        out = capsys.readouterr().out
        assert "FAIL:crash" in out
        assert "Failed runs" in out
        assert journal.exists()

    def test_run_with_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        code = main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "rrm", "--trace", str(trace_file)]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().err
        raw = json.loads(trace_file.read_text())
        assert raw["traceEvents"]
        categories = {
            e.get("cat") for e in raw["traceEvents"] if e["ph"] != "M"
        }
        assert len(categories) >= 4

    def test_run_rejects_bad_metrics_interval(self, capsys, tmp_path):
        code = main(
            ["run", "--config", "tiny", "--trace", str(tmp_path / "t.json"),
             "--metrics-interval", "sometimes"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_summary_round_trip(self, capsys, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--trace", str(trace_file)]
        ) == 0
        capsys.readouterr()
        code = main(["trace", str(trace_file), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "categories:" in out and "memctrl" in out

    def test_trace_missing_file(self, capsys):
        code = main(["trace", "/nonexistent/trace.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_with_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--trace", str(trace_file)]
        )
        assert code == 0
        raw = json.loads(trace_file.read_text())
        names = {e["name"] for e in raw["traceEvents"]}
        assert "job.attempt" in names and "job.result" in names


class TestLintCommand:
    """`repro-rrm lint` exit codes: 0 clean, 1 findings, 2 usage error."""

    DIRTY = "import time\n\n\ndef stamp():\n    return time.time()\n"

    @staticmethod
    def _dirty_file(tmp_path):
        pkg = tmp_path / "src" / "repro" / "engine"
        pkg.mkdir(parents=True)
        target = pkg / "dirty.py"
        target.write_text(TestLintCommand.DIRTY)
        return target

    def test_lint_repo_is_clean(self, capsys):
        # Self-hosting: the default roots plus the checked-in baseline
        # must exit 0 even under --strict.
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "baselined" in out

    def test_lint_findings_exit_1(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        code = main(["lint", str(target)])
        assert code == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "hint:" in out

    def test_lint_warnings_gate_only_under_strict(self, capsys, tmp_path):
        target = tmp_path / "src" / "repro" / "engine" / "warn.py"
        target.parent.mkdir(parents=True)
        # RL003 literal-kwarg sub-check emits a warning, not an error.
        target.write_text("def go(make):\n    return make(duration_ns=5.0)\n")
        assert main(["lint", str(target)]) == 0
        capsys.readouterr()
        assert main(["lint", str(target), "--strict"]) == 1
        assert "RL003" in capsys.readouterr().out

    def test_lint_missing_path_exit_2(self, capsys):
        code = main(["lint", "/nonexistent/dir"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_lint_json_format(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        code = main(["lint", str(target), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["counts"]["errors"] == 1
        assert payload["findings"][0]["rule"] == "RL001"

    def test_lint_select_scopes_rules(self, capsys, tmp_path):
        # The RL001 finding vanishes when only the concurrency rules run.
        target = self._dirty_file(tmp_path)
        assert main(["lint", str(target), "--select", "RL007-RL012"]) == 0
        capsys.readouterr()
        assert main(["lint", str(target), "--select", "RL001"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_lint_ignore_drops_rule(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        assert main(["lint", str(target), "--ignore", "RL001"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_select_json_reports_active_rules(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        code = main(
            ["lint", str(target), "--select", "RL007-RL012",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules_active"] == [
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]

    def test_lint_unknown_rule_exit_2(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        assert main(["lint", str(target), "--select", "RL099"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["lint", str(target), "--ignore", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_lint_update_baseline_round_trip(self, capsys, tmp_path):
        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main(
            ["lint", str(target), "--baseline", str(baseline),
             "--update-baseline"]
        )
        assert code == 0
        assert "baseline written" in capsys.readouterr().err
        assert baseline.exists()
        code = main(
            ["lint", str(target), "--baseline", str(baseline), "--strict"]
        )
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out


class TestProfileCommands:
    """The `profile` group plus the fabric-only `sweep --profile` guard."""

    def test_parser_profile_run_defaults(self):
        args = build_parser().parse_args(["profile", "run"])
        assert args.profile_command == "run"
        assert args.workload == "GemsFDTD"
        assert args.scheme == "rrm"
        assert args.interval == "5ms"
        assert args.out == "profile.json"
        assert not args.tracemalloc

    def test_parser_profile_diff_defaults(self):
        from repro.profiling import DEFAULT_DIFF_TOLERANCE

        args = build_parser().parse_args(["profile", "diff", "a.json", "b.json"])
        assert args.a == "a.json"
        assert args.b == "b.json"
        assert args.tolerance == DEFAULT_DIFF_TOLERANCE
        assert not args.check

    def test_parser_profile_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])

    def test_profile_run_report_diff_round_trip(self, capsys, tmp_path):
        out = tmp_path / "prof.json"
        svg = tmp_path / "flame.svg"
        folded = tmp_path / "stacks.folded"
        code = main(
            ["profile", "run", "--workload", "hmmer", "--config", "tiny",
             "--duration", "0.01", "--seed", "3",
             "--out", str(out), "--flamegraph", str(svg),
             "--folded", str(folded)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "event dispatch" in captured.out
        assert out.exists()
        assert svg.read_text().startswith("<svg")
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["dispatch_counts"]

        assert main(["profile", "report", str(out)]) == 0
        assert "event dispatch" in capsys.readouterr().out

        code = main(["profile", "diff", str(out), str(out), "--check"])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_profile_report_missing_file_exit_2(self, capsys, tmp_path):
        code = main(["profile", "report", str(tmp_path / "absent.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_profile_fetch_dead_socket_exit_2(self, capsys, tmp_path):
        code = main(
            ["profile", "fetch", "--address", str(tmp_path / "no.sock")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_serial_sweep_profile_guard(self, capsys, tmp_path):
        code = main(
            ["sweep", "--workloads", "hmmer", "--schemes", "rrm",
             "--config", "tiny", "--duration", "0.01",
             "--profile", str(tmp_path / "p.json")]
        )
        assert code == 2
        assert "--jobs" in capsys.readouterr().err
