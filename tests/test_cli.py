"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "GemsFDTD"
        assert args.scheme == "rrm"
        assert args.config == "scaled"

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--workloads", "hmmer", "mcf", "--workers", "4"]
        )
        assert args.workloads == ["hmmer", "mcf"]
        assert args.workers == 4

    def test_sweep_resilience_options(self):
        args = build_parser().parse_args(
            ["sweep", "--timeout", "30", "--retries", "1",
             "--journal", "j.jsonl", "--resume",
             "--inject-faults", "crash:1", "hang:lbm/rrm:1"]
        )
        assert args.timeout == 30.0
        assert args.retries == 1
        assert args.journal == "j.jsonl"
        assert args.resume
        assert args.inject_faults == ["crash:1", "hang:lbm/rrm:1"]

    def test_sweep_resilience_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.timeout is None
        assert args.retries == 2
        assert args.journal is None
        assert not args.resume
        assert args.inject_faults is None


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "7-SETs-Write" in out
        # Retention of the slow mode: 3054.9s in the paper, reproduced to
        # within calibration error.
        assert "3055" in out or "3054.9" in out
        assert "1150" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        out = capsys.readouterr().out
        assert "96KB" in out and "1.56%" in out
        assert "4x (default)" in out

    def test_run_tiny(self, capsys):
        code = main(
            ["run", "--config", "tiny", "--workload", "hmmer", "--scheme", "static-7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hmmer" in out and "Static-7-SETs" in out

    def test_run_verbose(self, capsys):
        main(
            ["run", "--config", "tiny", "--workload", "hmmer",
             "--scheme", "static-3", "--verbose"]
        )
        out = capsys.readouterr().out
        assert "lifetime_years" in out

    def test_compare_two_schemes(self, capsys):
        code = main(
            ["compare", "--config", "tiny", "--workload", "hmmer",
             "--schemes", "static-7", "static-3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC normalised" in out
        assert "lifetime" in out.lower()

    def test_table3_tiny(self, capsys):
        code = main(["table3", "--config", "tiny", "--workload", "GemsFDTD"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Average Write Interval" in out
        assert "never written" in out

    def test_sensitivity_threshold(self, capsys):
        code = main(
            ["sensitivity", "--config", "tiny", "--parameter", "threshold",
             "--workloads", "hmmer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot_threshold=8" in out and "hot_threshold=64" in out

    def test_sweep_json_output(self, capsys, tmp_path):
        out_file = tmp_path / "r.json"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()

    def test_sweep_resume_requires_journal(self, capsys):
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "--resume"]
        )
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_sweep_with_injected_crash_degrades(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        code = main(
            ["sweep", "--config", "tiny", "--workloads", "hmmer",
             "--schemes", "static-7", "static-3", "--retries", "0",
             "--inject-faults", "crash:1", "--journal", str(journal)]
        )
        assert code == 0  # degraded completion still succeeds
        out = capsys.readouterr().out
        assert "FAIL:crash" in out
        assert "Failed runs" in out
        assert journal.exists()
