"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        log = []
        sim.schedule_at(30.0, lambda: log.append("c"))
        sim.schedule_at(10.0, lambda: log.append("a"))
        sim.schedule_at(20.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self, sim):
        log = []
        for name in "abcd":
            sim.schedule_at(5.0, lambda n=name: log.append(n))
        sim.run()
        assert log == list("abcd")

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule_at(42.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.0]

    def test_schedule_after_is_relative(self, sim):
        seen = []
        sim.schedule_at(10.0, lambda: sim.schedule_after(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15.0]

    def test_past_scheduling_rejected(self, sim):
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_events_processed_counter(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestRunBounds:
    def test_until_excludes_later_events(self, sim):
        log = []
        sim.schedule_at(10.0, lambda: log.append(1))
        sim.schedule_at(100.0, lambda: log.append(2))
        sim.run(until=50.0)
        assert log == [1]

    def test_until_advances_clock_even_if_idle(self, sim):
        sim.run(until=77.0)
        assert sim.now == 77.0

    def test_remaining_events_fire_on_next_run(self, sim):
        log = []
        sim.schedule_at(100.0, lambda: log.append(2))
        sim.run(until=50.0)
        sim.run()
        assert log == [2]

    def test_max_events_bound(self, sim):
        log = []
        for t in range(10):
            sim.schedule_at(float(t + 1), lambda: log.append(1))
        sim.run(max_events=4)
        assert len(log) == 4

    def test_stop_ends_run(self, sim):
        log = []
        sim.schedule_at(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: log.append(2))
        sim.run()
        assert log == [1]
        sim.run()
        assert log == [1, 2]

    def test_run_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule_at(1.0, nested)
        sim.run()


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        log = []
        event = sim.schedule_at(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_pending_events_ignores_cancelled(self, sim):
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestPeriodic:
    def test_periodic_fires_repeatedly(self, sim):
        ticks = []
        sim.schedule_periodic(10.0, lambda: ticks.append(sim.now))
        sim.run(until=45.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_periodic_with_explicit_start(self, sim):
        ticks = []
        sim.schedule_periodic(10.0, lambda: ticks.append(sim.now), start=5.0)
        sim.run(until=30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_periodic_stops_on_stopiteration(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                raise StopIteration

        sim.schedule_periodic(1.0, tick)
        sim.run(until=100.0)
        assert len(ticks) == 3

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)
