"""Tests for the hot-path microscope (repro.profiling).

Covers the sampler's thread lifecycle (always joined, bounded ring),
the Profile artifact (round trip, merge, diff, ledger metrics), the
flamegraph renderer, the memory census, the engine's event-cost
accounting, and — load-bearing for everything else — that a profiled
run is bit-identical to an unprofiled one.
"""

import threading

import pytest

from repro.engine import EventCostAccounting, Simulator, owner_label
from repro.errors import ConfigError
from repro.profiling import (
    DEFAULT_DIFF_TOLERANCE,
    Profile,
    SamplingProfiler,
    deep_sizeof,
    diff_profiles,
    format_diff,
    format_profile,
    load_profile,
    merge_profiles,
    profile_self,
    render_flamegraph,
    subsystem_of,
    take_census,
)
from repro.profiling.profile import ProfileError
from repro.sim.config import SystemConfig
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.telemetry import TelemetryConfig


class TestSamplerLifecycle:
    def test_stop_joins_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        assert profiler.running
        thread = profiler._thread
        profiler.stop()
        assert not thread.is_alive()
        assert not profiler.running

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        profiler.stop()
        profiler.stop()  # second stop must not raise or hang
        assert not profiler.running

    def test_context_manager_joins_on_exception(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with pytest.raises(ValueError):
            with profiler:
                assert profiler.running
                raise ValueError("profiled block blew up")
        assert not profiler.running
        assert not profiler._thread.is_alive()

    def test_no_sampler_thread_leaks(self):
        before = {t.name for t in threading.enumerate()}
        with SamplingProfiler(interval_s=0.001):
            pass
        after = {
            t.name for t in threading.enumerate() if t.name not in before
        }
        assert "repro-sampler" not in after

    def test_start_twice_rejected(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        try:
            with pytest.raises(ConfigError):
                profiler.start()
        finally:
            profiler.stop()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ConfigError):
            SamplingProfiler(max_samples=0)

    def test_ring_respects_bound(self):
        profiler = SamplingProfiler(
            interval_s=1.0, max_samples=4, all_threads=True
        )
        # Drive capture directly (no daemon thread): spoofing own_tid
        # makes the calling thread sampleable.
        for _ in range(10):
            assert profiler.sample_once(own_tid=-1) >= 1
        assert profiler.retained <= 4
        assert profiler.samples_taken >= 10
        prof = profiler.build_profile()
        assert prof.retained <= 4
        assert prof.samples == profiler.samples_taken

    def test_sampled_stack_labels_this_test(self):
        profiler = SamplingProfiler(interval_s=1.0, all_threads=True)
        profiler.sample_once(own_tid=-1)
        prof = profiler.build_profile()
        leaves = [s.rsplit(";", 1)[-1] for s in prof.folded]
        assert any("sample_once" in leaf or "test_" in leaf for leaf in leaves)

    def test_profile_self_collects_samples(self):
        prof = profile_self(0.05, interval_s=0.002)
        assert prof.samples >= 1
        assert prof.duration_s > 0

    def test_empty_profile_formats_cleanly(self):
        prof = SamplingProfiler(interval_s=1.0).build_profile()
        text = format_profile(prof)
        assert "0 samples retained" in text
        assert "empty profile" in text


class TestProfileArtifact:
    @staticmethod
    def _sample_profile() -> Profile:
        return Profile(
            interval_s=0.005,
            duration_s=1.0,
            samples=10,
            retained=10,
            folded={
                "repro.sim.system:System.run;repro.engine.simulator:Simulator.run": 6,
                "repro.sim.system:System.run;repro.pcm.bank:Bank.schedule_read": 4,
            },
            dispatch_counts={"repro.cpu.core_model:CoreModel._wake_time": 7},
            dispatch_time_ns={"repro.cpu.core_model:CoreModel._wake_time": 5e6},
            memory={
                "by_subsystem": {"engine": 100, "pcm": 300},
                "total_bytes": 400,
                "touched_regions": 8,
                "bytes_per_touched_region": 50.0,
                "tracemalloc": None,
            },
        )

    def test_subsystem_of(self):
        assert subsystem_of("repro.engine.simulator:Simulator.run") == "engine"
        assert subsystem_of("repro:main") == "sim"
        assert subsystem_of("json.decoder:JSONDecoder.decode") == "other"

    def test_function_stats_dedups_recursion(self):
        prof = Profile(folded={"a:f;b:g;a:f": 3})
        stats = prof.function_stats()
        assert stats["a:f"]["total"] == 3  # once per sample, not per frame
        assert stats["a:f"]["self"] == 3
        assert stats["b:g"]["self"] == 0

    def test_subsystem_shares_sum_to_one(self):
        shares = self._sample_profile().subsystem_shares()
        assert shares == {"engine": 0.6, "pcm": 0.4}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_ledger_metrics_families(self):
        metrics = self._sample_profile().ledger_metrics()
        assert metrics["prof_samples"] == 10.0
        assert metrics["prof_dispatch_total"] == 7.0
        assert metrics["prof_dispatch_cpu"] == 7.0
        assert metrics["prof_engine_self_share"] == pytest.approx(0.6)
        assert metrics["mem_bytes_total"] == 400.0
        assert metrics["mem_touched_regions"] == 8.0
        assert metrics["mem_bytes_per_touched_region"] == pytest.approx(50.0)

    def test_save_load_round_trip(self, tmp_path):
        prof = self._sample_profile()
        path = tmp_path / "p.json"
        prof.save(path)
        loaded = load_profile(path)
        assert loaded.folded == prof.folded
        assert loaded.dispatch_counts == prof.dispatch_counts
        assert loaded.memory == prof.memory

    def test_load_missing_and_torn(self, tmp_path):
        with pytest.raises(ProfileError):
            load_profile(tmp_path / "absent.json")
        torn = tmp_path / "torn.json"
        torn.write_text('{"schema": 1, "folded"')
        with pytest.raises(ProfileError):
            load_profile(torn)

    def test_load_newer_schema_rejected(self, tmp_path):
        newer = tmp_path / "newer.json"
        newer.write_text('{"schema": 99}')
        with pytest.raises(ProfileError):
            load_profile(newer)

    def test_folded_text_format(self):
        text = self._sample_profile().folded_text()
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack and int(count) > 0

    def test_merge_is_order_independent(self):
        a = Profile(samples=3, retained=3, folded={"x:f": 3},
                    dispatch_counts={"o:a": 2}, meta={"worker": 0})
        b = Profile(samples=5, retained=5, folded={"x:f": 1, "y:g": 4},
                    dispatch_counts={"o:a": 1, "o:b": 3}, meta={"worker": 1})
        ab, ba = merge_profiles([a, b]), merge_profiles([b, a])
        assert ab.to_json_dict() == ba.to_json_dict()
        assert ab.samples == 8
        assert ab.folded == {"x:f": 4, "y:g": 4}
        assert ab.dispatch_counts == {"o:a": 3, "o:b": 3}
        assert ab.meta["workers"] == [0, 1]
        assert ab.memory is None  # per-process censuses don't merge

    def test_diff_identical_profiles_within_tolerance(self):
        prof = self._sample_profile()
        diff = diff_profiles(prof, prof)
        assert diff.max_subsystem_delta == 0.0
        assert diff.within(DEFAULT_DIFF_TOLERANCE)
        assert "within tolerance" in format_diff(diff)

    def test_diff_flags_real_movement(self):
        a = Profile(retained=10, folded={"repro.engine.simulator:run": 10})
        b = Profile(retained=10, folded={"repro.pcm.bank:read": 10})
        diff = diff_profiles(a, b)
        assert diff.subsystem_deltas["engine"] == pytest.approx(-1.0)
        assert diff.subsystem_deltas["pcm"] == pytest.approx(1.0)
        assert not diff.within(DEFAULT_DIFF_TOLERANCE)
        assert "EXCEEDS" in format_diff(diff)


class TestFlamegraph:
    def test_renders_standalone_svg(self):
        prof = TestProfileArtifact._sample_profile()
        svg = render_flamegraph(prof)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<script" not in svg
        assert "http-request" not in svg
        # Legend pairs color with word; frames carry title tooltips.
        assert ">engine</text>" in svg
        assert "<title>" in svg

    def test_same_profile_same_bytes(self):
        prof = TestProfileArtifact._sample_profile()
        assert render_flamegraph(prof) == render_flamegraph(prof)

    def test_empty_profile_renders(self):
        svg = render_flamegraph(Profile())
        assert "no samples recorded" in svg


class TestMemoryCensus:
    def test_deep_sizeof_counts_nested(self):
        flat = deep_sizeof([])
        nested = deep_sizeof([{"k": [1, 2, 3]}, (4, 5)])
        assert nested > flat

    def test_shared_state_charged_to_first_owner(self):
        shared = list(range(1000))

        class Holder:
            def __init__(self, payload):
                self.payload = payload

        first, second = Holder(shared), Holder(shared)
        census = take_census({"a": first, "b": second})
        assert census["by_subsystem"]["a"] > census["by_subsystem"]["b"]
        assert census["total_bytes"] == sum(census["by_subsystem"].values())

    def test_bytes_per_touched_region(self):
        census = take_census({"a": [1, 2, 3]}, touched_regions=4)
        assert census["touched_regions"] == 4
        assert census["bytes_per_touched_region"] == pytest.approx(
            census["total_bytes"] / 4
        )

    def test_none_roots_skipped(self):
        census = take_census({"a": [1], "b": None})
        assert "b" not in census["by_subsystem"]

    def test_tracemalloc_section_off_by_default(self):
        assert take_census({"a": [1]})["tracemalloc"] is None


class TestEventCostAccounting:
    def test_dispatch_counts_by_owner(self):
        ticks = {"n": 0}

        def on_tick():
            ticks["n"] += 1

        sim = Simulator()
        sim.enable_cost_accounting(clock=lambda: 0.0)
        sim.schedule_periodic(1e-3, on_tick)
        sim.run(until=5.5e-3)
        accounting = sim.cost_accounting
        assert accounting is not None
        assert ticks["n"] == 5
        label = owner_label(on_tick)
        assert accounting.counts[label] == ticks["n"]
        assert accounting.dispatches_total >= ticks["n"]

    def test_owner_label_resolves_bound_methods(self):
        class Widget:
            def poke(self):
                pass

        label = owner_label(Widget().poke)
        assert label.endswith(":TestEventCostAccounting."
                              "test_owner_label_resolves_bound_methods."
                              "<locals>.Widget.poke")

    def test_accounting_off_means_no_owner_stamping(self):
        sim = Simulator()
        sim.schedule_at(1e-6, lambda: None)
        assert sim.cost_accounting is None


class TestBitIdentity:
    """The acceptance criterion: profiling-on == profiling-off."""

    def test_profiled_run_is_bit_identical(self):
        config = SystemConfig.tiny(seed=3).with_duration(0.02)
        plain = System(config, "hmmer", Scheme.RRM).run()
        profiled = System(
            config,
            "hmmer",
            Scheme.RRM,
            telemetry=TelemetryConfig(profile=True, trace=False),
        ).run()
        assert plain.as_dict() == profiled.as_dict()
        assert plain.profile is None
        assert profiled.profile is not None

    def test_profile_side_channel_contents(self):
        config = SystemConfig.tiny(seed=3).with_duration(0.02)
        result = System(
            config,
            "hmmer",
            Scheme.RRM,
            telemetry=TelemetryConfig(profile=True, trace=False),
        ).run()
        prof = Profile.from_json_dict(result.profile)
        assert prof.dispatch_counts  # deterministic accounting populated
        assert prof.memory["total_bytes"] > 0
        assert prof.memory["touched_regions"] > 0
        metrics = prof.ledger_metrics()
        assert metrics["prof_dispatch_total"] > 0
        assert metrics["mem_bytes_per_touched_region"] > 0

    def test_dispatch_counts_deterministic_across_runs(self):
        config = SystemConfig.tiny(seed=3).with_duration(0.02)
        telemetry = TelemetryConfig(profile=True, trace=False)
        a = System(config, "hmmer", Scheme.RRM, telemetry=telemetry).run()
        b = System(config, "hmmer", Scheme.RRM, telemetry=telemetry).run()
        assert a.profile["dispatch_counts"] == b.profile["dispatch_counts"]

    def test_diff_of_identical_code_within_tolerance(self):
        config = SystemConfig.tiny(seed=3).with_duration(0.02)
        telemetry = TelemetryConfig(profile=True, trace=False)
        profs = [
            Profile.from_json_dict(
                System(config, "hmmer", Scheme.RRM, telemetry=telemetry)
                .run()
                .profile
            )
            for _ in range(2)
        ]
        diff = diff_profiles(profs[0], profs[1])
        # Same code, same workload: subsystem shares agree within the
        # sampling-noise bound documented in DESIGN.md section 15 —
        # the flat 5% default covers campaign-length profiles; short
        # runs widen it as 4/sqrt(retained samples).
        retained = min(profs[0].retained, profs[1].retained)
        tolerance = max(DEFAULT_DIFF_TOLERANCE, 4.0 / retained**0.5)
        assert diff.within(tolerance)
