"""Tests for the tiered (multi-mode) RRM extension."""

import pytest

from repro.core.config import RRMConfig
from repro.core.multimode import TieredRetentionMonitor, TieredRRMConfig
from repro.errors import ConfigError
from repro.memctrl.request import RequestType


class StubController:
    def __init__(self):
        self.requests = []

    def can_accept(self, rtype, block):
        return True

    def enqueue(self, request):
        self.requests.append(request)

    def notify_space(self, rtype, block, callback):  # pragma: no cover
        raise AssertionError("unexpected backpressure in stub")


@pytest.fixture
def config():
    return TieredRRMConfig(n_sets=4, n_ways=4, hot_threshold=16)


@pytest.fixture
def monitor(config, modes):
    return TieredRetentionMonitor(config, modes, controller=StubController())


def write_n(monitor, block, count):
    for _ in range(count):
        monitor.register_llc_write(block, was_dirty=True)


class TestConfig:
    def test_default_warm_threshold_is_half(self, config):
        assert config.effective_warm_threshold == 8

    def test_explicit_warm_threshold(self):
        cfg = TieredRRMConfig(n_sets=4, n_ways=4, warm_threshold=4)
        assert cfg.effective_warm_threshold == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mid_n_sets": 3},
            {"mid_n_sets": 7},
            {"warm_threshold": 0},
            {"warm_threshold": 16},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            TieredRRMConfig(n_sets=4, n_ways=4, **kwargs)

    def test_plain_config_rejected(self, modes):
        with pytest.raises(ConfigError):
            TieredRetentionMonitor(RRMConfig(n_sets=4, n_ways=4), modes)

    def test_mid_refresh_interval_tracks_mid_retention(self, monitor, modes):
        retention = modes.mode(5).retention_s
        assert monitor.mid_refresh_interval_s == pytest.approx(
            retention * (1 - monitor.config.refresh_slack_fraction)
        )


class TestTierTransitions:
    def test_cold_then_warm_then_hot(self, monitor):
        block = 3
        write_n(monitor, block, 7)
        assert monitor.decide_write_mode(block) == 7
        write_n(monitor, block, 1)  # 8 = warm threshold
        write_n(monitor, block, 1)  # registration while warm sets mid bit
        assert monitor.decide_write_mode(block) == 5
        write_n(monitor, block, 7)  # 16 -> hot
        assert monitor.decide_write_mode(block) == 3

    def test_hot_registration_clears_mid_bit(self, monitor, config):
        block = 3
        write_n(monitor, block, 20)
        entry = monitor.tags.lookup(0, touch=False)
        offset = config.block_offset(block)
        assert entry.vector_bit(offset)
        assert not entry.mid_bit(offset)

    def test_other_blocks_unaffected(self, monitor):
        write_n(monitor, 3, 20)
        assert monitor.decide_write_mode(9) == 7

    def test_mid_decisions_counted(self, monitor):
        write_n(monitor, 3, 9)
        monitor.decide_write_mode(3)
        assert monitor.mid_decisions == 1


class TestMidRefresh:
    def test_mid_blocks_refreshed_with_mid_mode(self, monitor):
        write_n(monitor, 3, 9)  # warm; mid bit set
        controller = monitor.controller
        monitor.on_mid_refresh_interrupt()
        mid = [r for r in controller.requests if r.n_sets == 5]
        assert [r.block for r in mid] == [3]
        assert mid[0].rtype is RequestType.RRM_REFRESH

    def test_fast_interrupt_ignores_mid_blocks(self, monitor):
        write_n(monitor, 3, 9)
        monitor.on_refresh_interrupt()
        assert monitor.controller.requests == []

    def test_fault_injection_disables_mid_refresh(self, modes):
        config = TieredRRMConfig(
            n_sets=4, n_ways=4, selective_refresh_enabled=False
        )
        monitor = TieredRetentionMonitor(config, modes, controller=StubController())
        write_n(monitor, 3, 9)
        monitor.on_mid_refresh_interrupt()
        assert monitor.controller.requests == []


class TestGradedDecay:
    def _wrap(self, monitor):
        for _ in range(monitor.config.decay_ticks_per_interval):
            monitor.on_decay_tick()

    def test_hot_downgrades_to_warm_not_cold(self, monitor):
        block = 3
        write_n(monitor, block, 16)  # hot, counter 16
        self._wrap(monitor)          # renew: halve to 8
        assert monitor.tags.lookup(0, touch=False).hot
        self._wrap(monitor)          # counter 8 >= warm 8 -> downgrade
        entry = monitor.tags.lookup(0, touch=False)
        assert not entry.hot
        assert entry.mid_bit(monitor.config.block_offset(block))
        assert monitor.downgrades == 1
        # The downgrade rewrote the block with the mid mode.
        mid = [r for r in monitor.controller.requests if r.n_sets == 5]
        assert [r.block for r in mid] == [block]
        assert monitor.decide_write_mode(block) == 5

    def test_warm_fully_demotes_when_idle(self, monitor):
        block = 3
        write_n(monitor, block, 9)   # warm (counter 9), mid bit set
        self._wrap(monitor)          # warm renew: halve to 4 < warm
        self._wrap(monitor)          # 4 < 8 -> full demotion
        entry = monitor.tags.lookup(0, touch=False)
        assert entry.mid_retention_vector == 0
        slow = [
            r for r in monitor.controller.requests
            if r.rtype is RequestType.RRM_SLOW_REFRESH
        ]
        assert [r.block for r in slow] == [block]
        assert monitor.decide_write_mode(block) == 7

    def test_eviction_rewrites_both_tiers(self, monitor, config):
        write_n(monitor, 0, 20)          # region 0: hot, fast bit 0
        write_n(monitor, 64 * 4 + 1, 9)  # region 4 (same set): warm, mid bit 1
        # Fill set 0 to force evictions.
        for way in range(2, config.n_ways + 2):
            region = way * config.n_sets
            monitor.register_llc_write(region * 64, was_dirty=True)
        slow = [
            r for r in monitor.controller.requests
            if r.rtype is RequestType.RRM_SLOW_REFRESH
        ]
        assert slow, "eviction should rewrite tracked blocks slow"


class TestEndToEnd:
    def test_tiered_monitor_runs_in_system(self, tiny_config):
        """Plug the tiered monitor in through System's monitor_factory
        extension point."""
        from repro.sim.schemes import Scheme
        from repro.sim.system import System

        config = tiny_config
        tiered_config = TieredRRMConfig(
            n_sets=config.rrm.n_sets,
            n_ways=config.rrm.n_ways,
            refresh_slack_fraction=config.rrm.refresh_slack_fraction,
        )
        system = System(
            config, "GemsFDTD", Scheme.RRM,
            monitor_factory=lambda modes, sim, controller: (
                TieredRetentionMonitor(
                    tiered_config, modes, sim=sim, controller=controller
                )
            ),
        )
        result = system.run()
        assert result.instructions > 0
        assert system.rrm.mid_decisions > 0
        # All three modes appear in the completed write mix: fast, slow,
        # and the mid tier (counted in neither fast nor slow).
        assert result.fast_writes > 0 and result.slow_writes > 0
        assert result.fast_writes + result.slow_writes < result.writes
