"""Tests for repro.utils.mathx."""

import math

import pytest

from repro.errors import ConfigError
from repro.utils.mathx import clamp, geomean, is_power_of_two, log2_int, weighted_mean


class TestGeomean:
    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_known_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_order_invariance(self):
        assert geomean([2, 3, 5]) == pytest.approx(geomean([5, 2, 3]))

    def test_scaling_property(self):
        values = [1.5, 2.5, 9.0]
        assert geomean([2 * v for v in values]) == pytest.approx(2 * geomean(values))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_accepts_generator(self):
        assert geomean(x for x in [4.0, 9.0]) == pytest.approx(6.0)


class TestWeightedMean:
    def test_uniform_weights(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(2.0)

    def test_skewed_weights(self):
        assert weighted_mean([10, 0], [3, 1]) == pytest.approx(7.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [1])

    def test_zero_weight_sum(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [0])


class TestPowersOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 256, 1 << 30])
    def test_powers_accepted(self, n):
        assert is_power_of_two(n)
        assert log2_int(n) == int(math.log2(n))

    @pytest.mark.parametrize("n", [0, -4, 3, 24, 100])
    def test_non_powers_rejected(self, n):
        assert not is_power_of_two(n)
        with pytest.raises(ConfigError):
            log2_int(n)


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_range(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)
