"""Tests for the multicore assembly."""

import pytest

from repro.cpu.core_model import CoreParams
from repro.cpu.multicore import Multicore
from repro.errors import ConfigError
from repro.workloads.events import EV_READ


def make_streams(n, reads=3):
    return [
        iter([(EV_READ, 100, core * 1024 + i * 64, False) for i in range(reads)])
        for core in range(n)
    ]


@pytest.fixture
def params():
    return CoreParams(freq_ghz=1.0, base_cpi=1.0, mlp=4, blocking_load_fraction=0.0)


class TestAssembly:
    def test_core_count(self, sim, controller, params):
        mc = Multicore(sim, controller, make_streams(3), params)
        assert mc.n_cores == 3

    def test_empty_streams_rejected(self, sim, controller, params):
        with pytest.raises(ConfigError):
            Multicore(sim, controller, [], params)

    def test_all_cores_execute(self, sim, controller, params):
        mc = Multicore(sim, controller, make_streams(2), params)
        mc.start()
        sim.run(until=1e7)
        assert mc.total_instructions() == 2 * 300
        assert controller.stats.reads_completed == 6

    def test_aggregate_ipc_is_sum(self, sim, controller, params):
        mc = Multicore(sim, controller, make_streams(2), params)
        mc.start()
        sim.run(until=1e6)
        per_core = mc.per_core_ipc(1e6)
        assert mc.aggregate_ipc(1e6) == pytest.approx(sum(per_core))

    def test_stall_summary_keys(self, sim, controller, params):
        mc = Multicore(sim, controller, make_streams(1), params)
        mc.start()
        sim.run(until=1e6)
        summary = mc.stall_summary()
        assert set(summary) == {
            "blocking_stalls", "mlp_stalls", "write_queue_stalls", "read_queue_stalls",
        }
