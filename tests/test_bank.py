"""Tests for the PCM bank model (row buffer + write pausing)."""

import pytest

from repro.pcm.bank import Bank, RowBuffer


@pytest.fixture
def bank():
    return Bank()


@pytest.fixture
def mode7(modes):
    return modes.mode(7)


class TestRowBuffer:
    def test_first_access_misses(self):
        rb = RowBuffer()
        assert rb.access(5) is False
        assert rb.open_row == 5

    def test_repeat_access_hits(self):
        rb = RowBuffer()
        rb.access(5)
        assert rb.access(5) is True
        assert rb.hits == 1 and rb.misses == 1

    def test_conflict_replaces_open_row(self):
        rb = RowBuffer()
        rb.access(5)
        assert rb.access(9) is False
        assert rb.open_row == 9


class TestReads:
    def test_row_miss_latency(self, bank):
        timings = bank.timings
        start, finish, hit = bank.schedule_read(0.0, row=3)
        assert not hit
        assert start == 0.0
        assert finish == pytest.approx(timings.row_miss_read_ns)

    def test_row_hit_latency(self, bank):
        bank.schedule_read(0.0, row=3)
        start, finish, hit = bank.schedule_read(1000.0, row=3)
        assert hit
        assert finish - start == pytest.approx(bank.timings.row_hit_read_ns)

    def test_busy_bank_delays_read(self, bank):
        _, finish1, _ = bank.schedule_read(0.0, row=1)
        start2, _, _ = bank.schedule_read(0.0, row=1)
        assert start2 == pytest.approx(finish1)

    def test_stats_counted(self, bank):
        bank.schedule_read(0.0, row=1)
        bank.schedule_read(500.0, row=1)
        assert bank.reads_served == 2


class TestWrites:
    def test_write_occupies_full_pulse(self, bank, mode7):
        start, finish = bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        assert finish - start == pytest.approx(1150.0)
        assert bank.busy_until == pytest.approx(finish)

    def test_write_through_leaves_row_buffer_alone(self, bank, mode7):
        bank.schedule_read(0.0, row=1)
        bank.schedule_write(2000.0, row=9, latency_ns=mode7.latency_ns)
        assert bank.row_buffer.open_row == 1

    def test_back_to_back_writes_serialize(self, bank, mode7):
        _, f1 = bank.schedule_write(0.0, row=1, latency_ns=mode7.latency_ns)
        s2, _ = bank.schedule_write(0.0, row=1, latency_ns=mode7.latency_ns)
        assert s2 == pytest.approx(f1)


class TestWritePausing:
    def test_read_preempts_write_at_boundary(self, bank, mode7):
        bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        # Read arrives mid-RESET (t=40): earliest pause point is 100ns.
        start, finish, _ = bank.schedule_read(40.0, row=1)
        assert start == pytest.approx(100.0)

    def test_paused_write_extended_by_read_service(self, bank, mode7):
        _, write_end = bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        start, read_finish, _ = bank.schedule_read(40.0, row=1)
        service = read_finish - start
        assert bank.write_end_time() == pytest.approx(write_end + service)
        assert bank.busy_until == pytest.approx(write_end + service)

    def test_read_waits_for_next_boundary(self, bank, mode7):
        bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        start, _, _ = bank.schedule_read(260.0, row=1)
        # Boundaries at 100, 250, 400...: next after 260 is 400.
        assert start == pytest.approx(400.0)

    def test_pause_counter_increments(self, bank, mode7):
        bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        bank.schedule_read(40.0, row=1)
        assert bank.write_pauses == 1

    def test_pausing_disabled_serializes(self, mode7):
        bank = Bank(allow_write_pausing=False)
        _, write_end = bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        start, _, _ = bank.schedule_read(40.0, row=1)
        assert start == pytest.approx(write_end)

    def test_max_pauses_respected(self, mode7):
        bank = Bank(max_pauses_per_write=1)
        bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        bank.schedule_read(40.0, row=1)  # pause 1 (allowed)
        write_end = bank.write_end_time()
        start, _, _ = bank.schedule_read(300.0, row=1)
        assert start >= write_end  # second pause denied

    def test_read_after_write_end_does_not_pause(self, bank, mode7):
        _, write_end = bank.schedule_write(
            0.0, row=1, latency_ns=mode7.latency_ns,
            pause_boundaries_ns=mode7.set_boundaries_ns,
        )
        start, _, _ = bank.schedule_read(write_end + 10, row=1)
        assert start == pytest.approx(write_end + 10)
        assert bank.write_pauses == 0


class TestUtilization:
    def test_utilization_fraction(self, bank, mode7):
        bank.schedule_write(0.0, row=1, latency_ns=mode7.latency_ns)
        assert bank.utilization(2300.0) == pytest.approx(0.5)

    def test_utilization_capped_at_one(self, bank, mode7):
        bank.schedule_write(0.0, row=1, latency_ns=mode7.latency_ns)
        assert bank.utilization(100.0) == 1.0

    def test_zero_elapsed(self, bank):
        assert bank.utilization(0.0) == 0.0
