"""Tests for the resilience layer: supervisor, retries, journal, faults."""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.errors import (
    CheckpointCorruptError,
    ConfigError,
    JobCrashedError,
    JobTimeoutError,
    ReproError,
    ResilienceError,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    Job,
    JobSupervisor,
    ResultJournal,
    RetryPolicy,
    run_with_retry,
)
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.runner import ExperimentRunner, run_workload
from repro.sim.schemes import Scheme

# Fast-failing policies so failure-path tests don't sleep for real.
NO_RETRY = RetryPolicy(max_retries=0, base_delay_s=0.0)
QUICK_RETRY = RetryPolicy(max_retries=2, base_delay_s=0.001, max_delay_s=0.01)


# ----------------------------------------------------------------------
# Module-level worker functions (picklable / fork-able)
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def _boom():
    raise ValueError("boom")


def _bad_config():
    raise ConfigError("deterministically wrong")


def _hard_exit():
    os._exit(9)


def _sleep_long():
    time.sleep(600)


def _fail_first_attempts(counter_path, n_failures, value):
    """Crash the process until *counter_path* records n_failures attempts."""
    count = int(counter_path.read_text()) if counter_path.exists() else 0
    counter_path.write_text(str(count + 1))
    if count < n_failures:
        os._exit(7)
    return value


class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.1)
        a = policy.schedule(("w", "s"), seed=42)
        b = policy.schedule(("w", "s"), seed=42)
        assert a == b
        assert policy.schedule(("w", "s"), seed=43) != a
        assert policy.schedule(("other", "s"), seed=42) != a

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=6, base_delay_s=0.1, backoff_factor=2.0,
            max_delay_s=0.4, jitter_fraction=0.0,
        )
        assert policy.schedule(("k",), seed=1) == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4, 0.4]
        )

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter_fraction=0.25)
        for attempt in (1, 2):
            delay = policy.delay_s(("k",), attempt, seed=7)
            base = min(policy.base_delay_s * 2 ** (attempt - 1), policy.max_delay_s)
            assert base * 0.75 <= delay <= base * 1.25

    def test_config_errors_not_retried(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(1, "ConfigError")
        assert not policy.should_retry(1, "TraceFormatError")
        assert policy.should_retry(1, "ValueError")
        assert not policy.should_retry(6, "ValueError")


class TestFaultSpecs:
    def test_parse_forms(self):
        assert FaultSpec.parse("crash:1") == FaultSpec("crash", "1", None)
        assert FaultSpec.parse("hang:GemsFDTD/rrm") == FaultSpec(
            "hang", "GemsFDTD/rrm", None
        )
        assert FaultSpec.parse("crash:0:1") == FaultSpec("crash", "0", 1)

    @pytest.mark.parametrize(
        "bad", ["crash", "explode:1", "crash:1:zero", "crash:1:0", "a:b:c:d"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigError):
            FaultSpec.parse(bad)

    def test_bind_resolves_index_and_name(self):
        keys = [("hmmer", "Static-7-SETs"), ("hmmer", "RRM")]
        plan = FaultPlan.parse(["crash:1", "hang:hmmer/static-7"]).bind(keys)
        assert plan.fault_for(("hmmer", "RRM"), 1) == "crash"
        assert plan.fault_for(("hmmer", "Static-7-SETs"), 1) == "hang"

    def test_bind_rejects_unknown_targets(self):
        keys = [("hmmer", "RRM")]
        with pytest.raises(ConfigError):
            FaultPlan.parse(["crash:5"]).bind(keys)
        with pytest.raises(ConfigError):
            FaultPlan.parse(["crash:lbm/rrm"]).bind(keys)

    def test_max_fires_limits_attempts(self):
        plan = FaultPlan.parse(["crash:0:2"]).bind([("w", "s")])
        assert plan.fault_for(("w", "s"), 1) == "crash"
        assert plan.fault_for(("w", "s"), 2) == "crash"
        assert plan.fault_for(("w", "s"), 3) is None


class TestSupervisorInline:
    def test_results_in_order(self):
        sup = JobSupervisor(retry=NO_RETRY)
        seen = []
        results, failures = sup.run(
            [Job(key=(i,), fn=_double, args=(i,)) for i in range(3)],
            on_result=lambda key, value: seen.append((key, value)),
        )
        assert results == {(0,): 0, (1,): 2, (2,): 4}
        assert not failures
        assert seen == [((0,), 0), ((1,), 2), ((2,), 4)]

    def test_error_degrades_to_failed_run(self):
        sup = JobSupervisor(retry=QUICK_RETRY, sleep=lambda s: None)
        results, failures = sup.run(
            [Job(key=("bad",), fn=_boom), Job(key=("good",), fn=_double, args=(1,))]
        )
        assert results == {("good",): 2}
        failed = failures[("bad",)]
        assert failed.kind == "error"
        assert failed.attempts == 3  # 1 try + 2 retries
        assert "boom" in failed.message

    def test_config_error_fails_fast(self):
        sup = JobSupervisor(retry=QUICK_RETRY, sleep=lambda s: None)
        _, failures = sup.run([Job(key=("cfg",), fn=_bad_config)])
        assert failures[("cfg",)].attempts == 1

    def test_run_with_retry_raises_structured_error(self):
        with pytest.raises(JobCrashedError):
            run_with_retry(_boom, key=("x",), retry=NO_RETRY)
        assert run_with_retry(_double, (21,), key=("x",), retry=NO_RETRY) == 42


class TestSupervisorSubprocess:
    def test_worker_crash_is_isolated(self):
        sup = JobSupervisor(2, retry=NO_RETRY)
        results, failures = sup.run(
            [
                Job(key=("a",), fn=_double, args=(2,)),
                Job(key=("dead",), fn=_hard_exit),
                Job(key=("b",), fn=_double, args=(3,)),
            ]
        )
        assert results == {("a",): 4, ("b",): 6}
        failed = failures[("dead",)]
        assert failed.kind == "crash"
        assert isinstance(failed.to_error(), JobCrashedError)
        assert isinstance(failed.to_error(), ResilienceError)
        assert isinstance(failed.to_error(), ReproError)

    def test_hang_hits_timeout(self):
        sup = JobSupervisor(2, timeout_s=0.3, retry=NO_RETRY)
        started = time.monotonic()
        results, failures = sup.run(
            [Job(key=("hung",), fn=_sleep_long), Job(key=("ok",), fn=_double, args=(1,))]
        )
        assert time.monotonic() - started < 30
        assert results == {("ok",): 2}
        failed = failures[("hung",)]
        assert failed.kind == "timeout"
        assert isinstance(failed.to_error(), JobTimeoutError)

    def test_retry_then_succeed(self, tmp_path):
        counter = tmp_path / "attempts"
        sup = JobSupervisor(1, timeout_s=30, retry=QUICK_RETRY)
        results, failures = sup.run(
            [Job(key=("flaky",), fn=_fail_first_attempts, args=(counter, 2, 99))]
        )
        assert not failures
        assert results == {("flaky",): 99}
        assert counter.read_text() == "3"
        assert [(key, attempt) for key, attempt, _ in sup.retries_scheduled] == [
            (("flaky",), 1),
            (("flaky",), 2),
        ]

    def test_corrupt_fault_caught_by_validation(self):
        plan = FaultPlan.parse(["corrupt:0"])
        sup = JobSupervisor(
            1,
            retry=NO_RETRY,
            fault_plan=plan,
            validate=lambda key, v: None if isinstance(v, int) else "not an int",
        )
        _, failures = sup.run([Job(key=("c",), fn=_double, args=(1,))])
        assert failures[("c",)].kind == "corrupt"

    def test_duplicate_keys_rejected(self):
        sup = JobSupervisor(retry=NO_RETRY)
        with pytest.raises(ValueError):
            sup.run([Job(key=("k",), fn=_double, args=(1,))] * 2)


class TestJournal:
    def test_append_is_atomic_and_loadable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ResultJournal(path)
        journal.start({"seed": 3})
        journal.append_result("w1", "s1", {"ipc": 1.0})
        journal.append_failure("w2", "s1", {"kind": "crash"})
        assert not path.with_name("j.jsonl.tmp").exists()
        contents = ResultJournal.load(path)
        assert contents.meta["seed"] == 3
        assert contents.results[("w1", "s1")] == {"ipc": 1.0}
        assert contents.failures[("w2", "s1")] == {"kind": "crash"}
        assert not contents.truncated

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ResultJournal(path)
        journal.start({"seed": 1})
        journal.append_result("w1", "s1", {"ipc": 1.0})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "result", "workload": "w2", "sch')
        contents = ResultJournal.load(path)
        assert contents.truncated
        assert list(contents.results) == [("w1", "s1")]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"type": "meta", "version": 1}),
            "NOT JSON AT ALL",
            json.dumps(
                {"type": "result", "workload": "w", "scheme": "s", "result": {}}
            ),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CheckpointCorruptError):
            ResultJournal.load(path)

    def test_resume_from_drops_failures(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ResultJournal(path)
        journal.start({"seed": 1})
        journal.append_result("w1", "s1", {"ipc": 1.0})
        journal.append_failure("w2", "s1", {"kind": "timeout"})
        fresh = ResultJournal(path)
        fresh.resume_from(ResultJournal.load(path), {"seed": 1})
        contents = ResultJournal.load(path)
        assert list(contents.results) == [("w1", "s1")]
        assert not contents.failures


class TestRunnerValidation:
    def test_n_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            ExperimentRunner(SystemConfig.tiny(), n_workers=0)
        with pytest.raises(ConfigError):
            ExperimentRunner(SystemConfig.tiny(), n_workers=-2)

    def test_max_events_must_be_positive(self):
        with pytest.raises(ConfigError):
            ExperimentRunner(SystemConfig.tiny(), max_events=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigError):
            ExperimentRunner(SystemConfig.tiny(), timeout_s=0)


class TestSimResultRoundTrip:
    def test_journal_serialization_is_lossless(self):
        result = run_workload(
            SystemConfig.tiny(), "hmmer", Scheme.STATIC_7, max_events=20_000
        )
        rebuilt = SimResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert rebuilt == result


@pytest.fixture(scope="module")
def crashed_sweep(tmp_path_factory):
    """A 1x2 sweep where the Static-3 job always crashes."""
    journal = tmp_path_factory.mktemp("sweep") / "journal.jsonl"
    runner = ExperimentRunner(
        SystemConfig.tiny(),
        workloads=["hmmer"],
        schemes=[Scheme.STATIC_7, Scheme.STATIC_3],
        retry=NO_RETRY,
        fault_plan=FaultPlan.parse(["crash:hmmer/static-3"]),
        journal_path=journal,
    )
    runner.run_all()
    return runner, journal


class TestRunnerFailurePaths:
    def test_crash_mid_sweep_degrades(self, crashed_sweep):
        runner, _ = crashed_sweep
        assert runner.has_result("hmmer", Scheme.STATIC_7)
        assert not runner.has_result("hmmer", Scheme.STATIC_3)
        failed = runner.failures[("hmmer", Scheme.STATIC_3)]
        assert failed.kind == "crash"
        with pytest.raises(ConfigError, match="crash"):
            runner.result("hmmer", Scheme.STATIC_3)

    def test_aggregation_skips_failed_cells(self, crashed_sweep):
        runner, _ = crashed_sweep
        assert runner.completed_workloads(Scheme.STATIC_3) == []
        assert runner.ipc_series(Scheme.STATIC_3) == []
        assert math.isnan(runner.geomean_ipc(Scheme.STATIC_3))
        assert math.isnan(
            runner.geomean_speedup(Scheme.STATIC_3, Scheme.STATIC_7)
        )
        assert runner.geomean_ipc(Scheme.STATIC_7) > 0

    def test_reports_annotate_failures(self, crashed_sweep):
        from repro.analysis.report import (
            energy_report,
            failure_report,
            lifetime_report,
            performance_report,
            wear_report,
        )

        runner, _ = crashed_sweep
        assert "FAIL:crash" in performance_report(runner)
        assert "FAIL:crash" in lifetime_report(runner)
        assert "n/a" in wear_report(runner)
        assert "n/a" in energy_report(runner)
        assert "crash" in failure_report(runner)

    def test_save_json_includes_failures(self, crashed_sweep, tmp_path):
        runner, _ = crashed_sweep
        path = tmp_path / "out.json"
        path.write_text("pre-existing", encoding="utf-8")
        runner.save_json(path)
        records = json.loads(path.read_text())
        by_status = {r["status"] for r in records}
        assert by_status == {"ok", "failed"}
        (failed,) = [r for r in records if r["status"] == "failed"]
        assert failed["scheme"] == "Static-3-SETs"
        assert failed["kind"] == "crash"
        assert not path.with_name("out.json.tmp").exists()

    def test_journal_records_both_outcomes(self, crashed_sweep):
        _, journal = crashed_sweep
        contents = ResultJournal.load(journal)
        assert list(contents.results) == [("hmmer", "Static-7-SETs")]
        assert list(contents.failures) == [("hmmer", "Static-3-SETs")]


class TestRunnerResume:
    def test_resume_reruns_only_missing(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        first = ExperimentRunner(
            SystemConfig.tiny(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7, Scheme.STATIC_3],
            retry=NO_RETRY,
            fault_plan=FaultPlan.parse(["crash:hmmer/static-3"]),
            journal_path=journal,
        )
        first.run_all()
        # Simulate a crash mid-append: torn trailing write.
        with journal.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "result", "workload": "hm')

        second = ExperimentRunner(
            SystemConfig.tiny(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7, Scheme.STATIC_3],
            retry=NO_RETRY,
        )
        reran = []
        second.resume(journal, progress=lambda w, s, r: reran.append((w, s)))
        # Only the journaled failure re-ran; the surviving result was reused.
        assert reran == [("hmmer", Scheme.STATIC_3)]
        assert len(second.results) == 2
        assert not second.failures
        assert second.result("hmmer", Scheme.STATIC_7).ipc == first.result(
            "hmmer", Scheme.STATIC_7
        ).ipc
        # The journal now holds both results and no failure records.
        contents = ResultJournal.load(journal)
        assert len(contents.results) == 2
        assert not contents.failures and not contents.truncated

    def test_resume_without_journal_raises(self):
        runner = ExperimentRunner(SystemConfig.tiny(), workloads=["hmmer"])
        with pytest.raises(ConfigError):
            runner.resume()


class TestSweepCacheJournal:
    def test_bench_cache_resumes_from_journal(self, tmp_path, monkeypatch):
        from benchmarks.common import SweepCache

        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.setenv(
            "REPRO_BENCH_JOURNAL", str(tmp_path / "bench.jsonl")
        )
        first = SweepCache()
        result = first.get("hmmer", Scheme.STATIC_7)
        assert first.runs_executed == 1
        # A new session (fresh cache) reloads the cell instead of re-running.
        second = SweepCache()
        reloaded = second.get("hmmer", Scheme.STATIC_7)
        assert second.runs_executed == 0
        assert reloaded.ipc == result.ipc
        assert reloaded.scheme is Scheme.STATIC_7


class TestDeterminism:
    def _run(self):
        runner = ExperimentRunner(
            SystemConfig.tiny(seed=5),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            retry=QUICK_RETRY,
            fault_plan=FaultPlan.parse(["crash:0:1"]),  # retry succeeds
        )
        runner.run_all()
        return runner

    def test_same_seed_same_results_and_schedule(self):
        a, b = self._run(), self._run()
        assert not a.failures and not b.failures
        da = a.result("hmmer", Scheme.STATIC_7).to_json_dict()
        db = b.result("hmmer", Scheme.STATIC_7).to_json_dict()
        # Wall time measures the host, not the simulation.
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db
        # The jitter schedule itself is a pure function of the seed.
        policy = QUICK_RETRY
        key = ("hmmer", Scheme.STATIC_7.value)
        assert policy.schedule(key, seed=5) == policy.schedule(key, seed=5)
