"""Invariance checks for the drift-scaling substitution (DESIGN.md #3).

The scaled experiment methodology rests on two claims:

1. compressing retention times and the run duration by the same factor
   preserves the *count* of refresh intervals and decay windows per run;
2. the lifetime model converts refresh rates back to the paper's
   timescale, so reported lifetimes are scale-consistent.

These tests validate both directly on small systems.
"""

import dataclasses

import pytest

from repro.core.monitor import RegionRetentionMonitor
from repro.engine import Simulator
from repro.pcm.drift import DriftModel, DriftParameters
from repro.pcm.write_modes import WriteModeTable
from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.utils.units import s_to_ns


def _monitor_at_scale(scale, rrm_config):
    modes = WriteModeTable(DriftModel(DriftParameters(drift_scale=scale)))
    sim = Simulator()
    monitor = RegionRetentionMonitor(rrm_config, modes, sim=sim)
    monitor.start()
    return sim, monitor


class TestIntervalCountInvariance:
    @pytest.mark.parametrize("scale", [1.0, 10.0, 200.0])
    def test_interrupts_per_virtual_window_constant(self, scale, rrm_config):
        """Over the same *virtual* duration, every drift scale sees the
        same number of refresh interrupts and decay ticks."""
        virtual_window_s = 5.0
        sim, monitor = _monitor_at_scale(scale, rrm_config)
        sim.run(until=s_to_ns(virtual_window_s / scale))
        # 5 virtual seconds / ~2s virtual interval = 2 full interrupts.
        assert monitor.stats.refresh_interrupts == 2
        assert monitor.stats.decay_ticks == 40

    def test_interval_ratio_matches_modes(self, rrm_config):
        _, monitor = _monitor_at_scale(50.0, rrm_config)
        assert monitor.decay_period_s * rrm_config.decay_ticks_per_interval == (
            pytest.approx(monitor.refresh_interval_s)
        )


class TestLifetimeScaleConsistency:
    def test_static_lifetime_insensitive_to_drift_scale(self):
        """Static-scheme lifetimes are dominated by demand rate and the
        *virtual* refresh interval, so two runs that differ only in
        drift_scale (with matched virtual duration) must report similar
        lifetimes."""
        base = SystemConfig.tiny()  # drift_scale 200, duration 0.02
        slower = dataclasses.replace(
            base, drift_scale=100.0, duration_s=0.04
        )
        a = run_workload(base, "GemsFDTD", Scheme.STATIC_7)
        b = run_workload(slower, "GemsFDTD", Scheme.STATIC_7)
        assert a.virtual_duration_s == pytest.approx(b.virtual_duration_s)
        assert a.lifetime_years == pytest.approx(b.lifetime_years, rel=0.25)

    def test_static3_lifetime_matches_analytic_bound(self):
        """With the refresh-dominated fast scheme, lifetime approaches the
        analytic endurance*interval bound regardless of configuration."""
        config = SystemConfig.tiny()
        result = run_workload(config, "hmmer", Scheme.STATIC_3)
        # Analytic ceiling: endurance * efficiency * virtual interval.
        from repro.utils.units import S_PER_YEAR

        ceiling = 5e6 * 0.95 * 2.0 / S_PER_YEAR
        assert result.lifetime_years <= ceiling * 1.01
        assert result.lifetime_years > ceiling * 0.3

    def test_rrm_refresh_rate_reported_on_virtual_timescale(self):
        config = SystemConfig.tiny()
        result = run_workload(config, "GemsFDTD", Scheme.RRM)
        refreshes = result.rrm_fast_refreshes + result.rrm_slow_refreshes
        expected_rate = refreshes / result.virtual_duration_s
        assert result.wear.rrm_refresh_rate == pytest.approx(expected_rate)
