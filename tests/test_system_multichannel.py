"""Integration tests on multi-channel configurations.

The default scaled configuration is single-channel; these tests make sure
nothing in the stack silently assumes one channel (address decoding,
queue routing, RRM refresh fan-out).
"""

import dataclasses

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.utils.units import parse_size


@pytest.fixture(scope="module")
def multichannel_config():
    base = SystemConfig.tiny()
    return dataclasses.replace(
        base,
        memory=dataclasses.replace(
            base.memory,
            size_bytes=parse_size("256MB"),
            n_channels=4,
            banks_per_channel=2,
        ),
    )


class TestMultiChannel:
    def test_rrm_runs_on_four_channels(self, multichannel_config):
        result = run_workload(multichannel_config, "GemsFDTD", Scheme.RRM)
        assert result.instructions > 0
        assert result.writes > 0
        assert result.retention_violations == 0

    def test_more_channels_do_not_hurt(self, multichannel_config):
        """4 channels x 2 banks must be at least as fast as 1 x 2 for the
        same workload (more parallelism, same or better)."""
        narrow = SystemConfig.tiny()
        wide = run_workload(multichannel_config, "GemsFDTD", Scheme.STATIC_7)
        base = run_workload(narrow, "GemsFDTD", Scheme.STATIC_7)
        assert wide.ipc >= base.ipc * 0.95

    def test_schemes_still_ordered(self, multichannel_config):
        s7 = run_workload(multichannel_config, "GemsFDTD", Scheme.STATIC_7)
        s3 = run_workload(multichannel_config, "GemsFDTD", Scheme.STATIC_3)
        rrm = run_workload(multichannel_config, "GemsFDTD", Scheme.RRM)
        assert s7.ipc <= rrm.ipc <= s3.ipc * 1.02

    def test_footprint_clamped_to_core_window(self):
        """A workload whose nominal footprint exceeds the per-core address
        window must be clamped, not crash or alias across cores."""
        base = SystemConfig.tiny()
        small_memory = dataclasses.replace(
            base,
            memory=dataclasses.replace(base.memory, size_bytes=parse_size("16MB")),
            footprint_scale=1.0,  # nominal footprints, far larger than 16MB/2
        )
        result = run_workload(small_memory, "mcf", Scheme.STATIC_7)
        assert result.instructions > 0
