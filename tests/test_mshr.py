"""Tests for the MSHR file."""

import pytest

from repro.cache.mshr import MSHRFile
from repro.errors import ConfigError, SimulationError


class TestAllocation:
    def test_primary_miss(self):
        mshr = MSHRFile(4)
        assert mshr.allocate(10) is True
        assert mshr.outstanding(10)

    def test_secondary_miss_merges(self):
        mshr = MSHRFile(4)
        mshr.allocate(10)
        assert mshr.allocate(10) is False
        assert mshr.merges == 1
        assert len(mshr) == 1

    def test_capacity_enforced(self):
        mshr = MSHRFile(2)
        mshr.allocate(1)
        mshr.allocate(2)
        assert mshr.full
        with pytest.raises(SimulationError):
            mshr.allocate(3)

    def test_merge_allowed_when_full(self):
        mshr = MSHRFile(2)
        mshr.allocate(1)
        mshr.allocate(2)
        assert mshr.can_accept(1)
        assert mshr.allocate(1) is False

    def test_can_accept_rejects_new_when_full(self):
        mshr = MSHRFile(1)
        mshr.allocate(1)
        assert not mshr.can_accept(2)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            MSHRFile(0)


class TestCompletion:
    def test_complete_returns_waiters(self):
        mshr = MSHRFile(4)
        woken = []
        mshr.allocate(10, waiter=lambda: woken.append("a"))
        mshr.allocate(10, waiter=lambda: woken.append("b"))
        waiters = mshr.complete(10)
        for w in waiters:
            w()
        assert woken == ["a", "b"]
        assert not mshr.outstanding(10)

    def test_complete_unknown_is_error(self):
        with pytest.raises(SimulationError):
            MSHRFile(2).complete(7)

    def test_peak_occupancy(self):
        mshr = MSHRFile(4)
        mshr.allocate(1)
        mshr.allocate(2)
        mshr.complete(1)
        mshr.allocate(3)
        assert mshr.peak_occupancy == 2
