"""Integration tests: the full System over tiny configurations.

These assert the paper's qualitative results end-to-end:

- faster write modes give higher IPC;
- fewer SETs give shorter lifetime (refresh wear dominates);
- RRM sits between the static extremes on both axes;
- RRM actually issues selective refreshes and fast writes.
"""

import dataclasses

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.sim.system import System


@pytest.fixture(scope="module")
def results():
    """One tiny run per scheme, shared across assertions."""
    config = SystemConfig.tiny()
    return {
        scheme: run_workload(config, "GemsFDTD", scheme)
        for scheme in (Scheme.STATIC_7, Scheme.STATIC_3, Scheme.RRM)
    }


class TestPerformanceOrdering:
    def test_fast_static_beats_slow_static(self, results):
        assert results[Scheme.STATIC_3].ipc > results[Scheme.STATIC_7].ipc

    def test_rrm_between_statics(self, results):
        assert (
            results[Scheme.STATIC_7].ipc
            < results[Scheme.RRM].ipc
            <= results[Scheme.STATIC_3].ipc * 1.01
        )

    def test_instructions_progress(self, results):
        for result in results.values():
            assert result.instructions > 10_000
            assert result.ipc > 0


class TestLifetimeOrdering:
    def test_static3_lifetime_is_refresh_bound(self, results):
        """Static-3 refreshes the whole device every ~2 virtual seconds;
        its lifetime must be far below the slow scheme's."""
        assert results[Scheme.STATIC_3].lifetime_years < (
            results[Scheme.STATIC_7].lifetime_years / 3
        )

    def test_rrm_lifetime_between(self, results):
        assert (
            results[Scheme.STATIC_3].lifetime_years
            < results[Scheme.RRM].lifetime_years
            <= results[Scheme.STATIC_7].lifetime_years
        )

    def test_wear_reports_populated(self, results):
        for result in results.values():
            assert result.wear.demand_rate > 0
            assert result.wear.global_refresh_rate > 0


class TestWriteModeMix:
    def test_static_schemes_are_pure(self, results):
        assert results[Scheme.STATIC_3].fast_write_fraction == 1.0
        assert results[Scheme.STATIC_7].fast_write_fraction == 0.0

    def test_rrm_mixes_modes(self, results):
        fraction = results[Scheme.RRM].fast_write_fraction
        assert 0.2 < fraction < 1.0

    def test_rrm_issues_selective_refreshes(self, results):
        rrm = results[Scheme.RRM]
        assert rrm.rrm_fast_refreshes + rrm.rrm_slow_refreshes > 0
        assert rrm.rrm_stats is not None
        assert rrm.rrm_stats["promotions"] > 0

    def test_static_schemes_have_no_rrm_traffic(self, results):
        for scheme in (Scheme.STATIC_3, Scheme.STATIC_7):
            assert results[scheme].rrm_fast_refreshes == 0
            assert results[scheme].rrm_slow_refreshes == 0


class TestEnergyShape:
    def test_static3_refresh_energy_dominates(self, results):
        energy = results[Scheme.STATIC_3].energy
        assert energy.global_refresh_rate > energy.write_rate

    def test_rrm_refresh_energy_small(self, results):
        """Paper Section VI-C: RRM's refresh energy is trivial next to its
        write energy."""
        energy = results[Scheme.RRM].energy
        assert energy.rrm_refresh_rate < energy.write_rate * 0.5

    def test_energy_totals_positive(self, results):
        for result in results.values():
            assert result.energy.total_rate > 0


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        config = SystemConfig.tiny()
        a = run_workload(config, "hmmer", Scheme.RRM)
        b = run_workload(config, "hmmer", Scheme.RRM)
        assert a.ipc == b.ipc
        assert a.writes == b.writes
        assert a.rrm_fast_refreshes == b.rrm_fast_refreshes

    def test_different_seed_differs(self):
        config = SystemConfig.tiny()
        a = run_workload(config, "hmmer", Scheme.RRM)
        b = run_workload(config.with_seed(99), "hmmer", Scheme.RRM)
        assert a.instructions != b.instructions


class TestSystemProtocol:
    def test_run_only_once(self, tiny_config):
        system = System(tiny_config, "hmmer", Scheme.STATIC_7)
        system.run(max_events=100)
        with pytest.raises(Exception):
            system.run()

    def test_write_trace_sink_sees_demand_writes(self, tiny_config):
        records = []
        system = System(
            tiny_config, "GemsFDTD", Scheme.STATIC_7,
            write_trace_sink=lambda t, block: records.append((t, block)),
        )
        result = system.run()
        assert len(records) == result.writes
        times = [t for t, _ in records]
        assert times == sorted(times)

    def test_mix_workload_runs(self, tiny_config):
        config = dataclasses.replace(tiny_config, n_cores=4)
        result = run_workload(config, "MIX_1", Scheme.RRM)
        assert result.instructions > 0

    def test_no_retention_violations_in_tiny(self, results):
        assert results[Scheme.RRM].retention_violations == 0

    def test_paper_config_smoke(self):
        """The full paper-scale configuration must at least build and
        advance (bounded by max_events, not duration)."""
        config = SystemConfig.paper()
        result = run_workload(
            config, "GemsFDTD", Scheme.RRM, max_events=20_000
        )
        assert result.instructions > 0
