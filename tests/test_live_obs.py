"""Tests for the live fleet observability layer (repro.obs.live):
exposition, structured logs, heartbeats, flight recorder, metrics/fleet
serve ops, the HTTP scrape endpoint, and `repro-rrm top` rendering."""

from __future__ import annotations

import io
import json
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigError
from repro.fabric import FabricClient, FabricServer, SweepSpec
from repro.obs.live import (
    HEARTBEAT_EVENT,
    FleetStatus,
    FlightRecorder,
    StructuredLogger,
    make_heartbeat,
    read_rss_bytes,
    recorder_path_for,
    render_exposition,
    sanitize_metric_name,
)
from repro.obs.live.httpmetrics import MetricsHTTPServer
from repro.obs.live.slog import parse_log_line
from repro.obs.live.top import format_fleet_lines, render_frame, run_top
from repro.resilience import FaultPlan, ResultJournal, RetryPolicy
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme
from repro.telemetry import MetricRegistry

#: Event cap that keeps each simulated cell well under a second.
FAST = 20_000


def tiny_config(seed: int = 1) -> SystemConfig:
    return SystemConfig.tiny(seed=seed)


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
class TestExposition:
    def test_sanitize_metric_name(self):
        assert (
            sanitize_metric_name("memctrl.reads_completed")
            == "repro_memctrl_reads_completed"
        )
        assert sanitize_metric_name("a-b c", namespace="") == "a_b_c"
        assert sanitize_metric_name("0weird", namespace="") == "_0weird"

    def test_counter_and_gauge_families(self):
        registry = MetricRegistry()
        registry.counter("fabric.jobs_completed").inc(3)
        registry.gauge("fleet.rss_bytes", lambda: 1.5)
        text = render_exposition(registry)
        assert "# TYPE repro_fabric_jobs_completed counter" in text
        assert "repro_fabric_jobs_completed 3" in text
        assert "# TYPE repro_fleet_rss_bytes gauge" in text
        assert "repro_fleet_rss_bytes 1.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram("lat", bounds=[1.0, 10.0])
        for v in (0.5, 0.7, 5.0, 50.0):
            hist.record(v)
        lines = render_exposition(registry).splitlines()
        assert "# TYPE repro_lat histogram" in lines
        assert 'repro_lat_bucket{le="1"} 2' in lines
        assert 'repro_lat_bucket{le="10"} 3' in lines
        assert 'repro_lat_bucket{le="+Inf"} 4' in lines
        assert "repro_lat_count 4" in lines
        assert "repro_lat_sum 56.2" in lines

    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricRegistry()) == ""

    def test_snapshot_is_byte_stable(self):
        registry = MetricRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        first = render_exposition(registry)
        assert first == render_exposition(registry)
        # Sorted by name, not registration order.
        assert first.index("repro_a_first") < first.index("repro_z_last")


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class TestStructuredLogger:
    def test_correlation_chain_round_trips(self):
        stream = io.StringIO()
        root = StructuredLogger(stream, fields={"sweep": "sweep-001"}, clock=lambda: 5.0)
        worker_log = root.bind(worker=2)
        attempt_log = worker_log.bind(job="hmmer/RRM", attempt=1)
        attempt_log.event("job.claimed")
        record = parse_log_line(stream.getvalue().splitlines()[0])
        assert record == {
            "stamp": 5.0,
            "level": "info",
            "event": "job.claimed",
            "sweep": "sweep-001",
            "worker": 2,
            "job": "hmmer/RRM",
            "attempt": 1,
        }
        # Children share the parent's sink and its counters.
        assert root.records_emitted == 1

    def test_parse_log_line_tolerates_foreign_output(self):
        assert parse_log_line("not json\n") is None
        assert parse_log_line("[1, 2]") is None
        assert parse_log_line('{"event": "x"}') == {"event": "x"}

    def test_broken_stream_counts_drops_not_raises(self):
        stream = io.StringIO()
        stream.close()
        log = StructuredLogger(stream)
        log.event("x")  # must not raise
        registry = MetricRegistry()
        log.register_metrics(registry)
        assert registry.get("obs.log.records_dropped").value() == 1
        assert registry.get("obs.log.records_emitted").value() == 0

    def test_mirror_taps_every_record(self):
        seen = []
        log = StructuredLogger(io.StringIO(), mirror=seen.append)
        log.error("boom", detail="d")
        assert seen[0]["event"] == "boom" and seen[0]["level"] == "error"


# ----------------------------------------------------------------------
# Heartbeats / FleetStatus
# ----------------------------------------------------------------------
class TestFleetStatus:
    def test_fake_clock_drives_staleness(self):
        now = [1000.0]
        fleet = FleetStatus(stale_after_s=10.0, clock=lambda: now[0])
        fleet.observe(make_heartbeat(worker=0, pid=11, jobs_done=1))
        fleet.observe(make_heartbeat(worker=1, pid=12))
        now[0] += 5.0
        assert [r["stale"] for r in fleet.workers()] == [False, False]
        now[0] += 6.0  # worker beats are now 11s old
        workers = fleet.workers()
        assert all(r["stale"] for r in workers)
        assert all(r["age_s"] == pytest.approx(11.0) for r in workers)
        assert fleet.totals()["stale_workers"] == 2
        # A fresh beat from one worker clears only that worker.
        fleet.observe(make_heartbeat(worker=0, pid=11, jobs_done=2))
        assert [r["stale"] for r in fleet.workers()] == [False, True]

    def test_exited_workers_never_go_stale(self):
        now = [0.0]
        fleet = FleetStatus(stale_after_s=1.0, clock=lambda: now[0])
        fleet.observe(make_heartbeat(worker=0, jobs_done=3))
        fleet.mark_done(0)
        now[0] += 100.0
        record = fleet.workers()[0]
        assert record["exited"] and not record["stale"]
        # Its totals still count.
        assert fleet.totals()["jobs_done"] == 3

    def test_totals_aggregate_throughput(self):
        fleet = FleetStatus(clock=lambda: 0.0)
        fleet.observe(
            make_heartbeat(worker=0, busy_s=2.0, sim_events=600, rss_bytes=10)
        )
        fleet.observe(
            make_heartbeat(worker=1, busy_s=2.0, sim_events=200, rss_bytes=30)
        )
        totals = fleet.totals()
        assert totals["workers"] == 2
        assert totals["sim_events"] == 800
        assert totals["sim_events_per_sec"] == pytest.approx(200.0)
        assert totals["rss_bytes"] == 40

    def test_forget_and_clear(self):
        fleet = FleetStatus(clock=lambda: 0.0)
        fleet.observe(make_heartbeat(worker=0))
        fleet.observe(make_heartbeat(worker=1))
        fleet.forget(0)
        assert [r["worker"] for r in fleet.workers()] == [1]
        fleet.clear()
        assert fleet.as_dict()["workers"] == []

    def test_register_metrics_exposes_totals(self):
        fleet = FleetStatus(clock=lambda: 0.0)
        fleet.observe(make_heartbeat(worker=0, jobs_done=4))
        registry = MetricRegistry()
        fleet.register_metrics(registry)
        assert registry.get("fleet.jobs_done").value() == 4.0
        assert registry.get("fleet.heartbeats_seen").value() == 1

    def test_read_rss_bytes_is_positive_here(self):
        assert read_rss_bytes() > 0


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_bounds_and_drop_counting(self, tmp_path):
        recorder = FlightRecorder(
            tmp_path / "f.json", capacity=3, clock=lambda: 0.0
        )
        for i in range(5):
            recorder.record("tick", {"i": i})
        path = recorder.dump("test")
        payload = json.loads(path.read_text())
        assert [r["i"] for r in payload["records"]] == [2, 3, 4]
        assert payload["records_seen"] == 5
        assert payload["records_dropped"] == 2
        assert payload["reason"] == "test"

    def test_dump_carries_context_and_counts(self, tmp_path):
        recorder = FlightRecorder(
            tmp_path / "f.json", clock=lambda: 7.0, context={"worker": 3}
        )
        recorder.record("log", {"event": "x"})
        payload = json.loads(recorder.dump("why").read_text())
        assert payload["context"] == {"worker": 3}
        assert payload["dumped_unix_s"] == 7.0
        assert recorder.dumps_written == 1

    def test_try_dump_swallows_io_failure(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("")  # a *file* where a directory is needed
        recorder = FlightRecorder(target / "f.json")
        assert recorder.try_dump("x") is None
        assert recorder.dump_failures == 1

    def test_mirror_adapts_log_records(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.json", clock=lambda: 0.0)
        log = StructuredLogger(io.StringIO(), mirror=recorder.mirror)
        log.event("job.claimed", worker=1)
        payload = json.loads(recorder.dump("x").read_text())
        assert payload["records"][0]["kind"] == "log"
        assert payload["records"][0]["event"] == "job.claimed"

    def test_recorder_path_is_deterministic(self, tmp_path):
        path = recorder_path_for(tmp_path, 3, 4242)
        assert path.name == "flight-w03-p4242.json"
        assert recorder_path_for(tmp_path, 3, 4242) == path

    def test_rejects_zero_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "f.json", capacity=0)

    def test_install_dumps_on_sigterm(self, tmp_path):
        # A real subprocess: the SIGTERM handler must dump and then die
        # with the signal's default disposition (exit by SIGTERM).
        recorder_file = tmp_path / "f.json"
        code = (
            "import signal, sys, time\n"
            "from repro.obs.live import FlightRecorder\n"
            f"r = FlightRecorder({str(recorder_file)!r}).install()\n"
            "r.record('ready')\n"
            "print('up', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
        )
        try:
            assert proc.stdout.readline().strip() == "up"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            proc.kill()
        assert proc.returncode == -signal.SIGTERM
        payload = json.loads(recorder_file.read_text())
        assert payload["reason"] == "sigterm"
        assert [r["kind"] for r in payload["records"]] == ["ready", "signal"]


# ----------------------------------------------------------------------
# Fabric integration: heartbeats, crash linkage, bit identity
# ----------------------------------------------------------------------
class TestFabricIntegration:
    def test_heartbeats_feed_fleet_status(self, tmp_path):
        events = []
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
            on_event=lambda name, args: events.append((name, args)),
        )
        runner.run_all()
        beats = [a for n, a in events if n == HEARTBEAT_EVENT]
        assert beats, "workers emitted no heartbeats"
        assert {"worker", "pid", "jobs_done", "busy_s", "sim_events"} <= set(
            beats[0]
        )
        totals = runner.fleet.totals()
        assert totals["jobs_done"] == 1
        assert totals["sim_events"] > 0
        assert totals["sim_events_per_sec"] > 0

    def test_injected_crash_links_flight_recorder(self, tmp_path):
        recorder_dir = tmp_path / "flight"
        runner = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "j.jsonl",
            fault_plan=FaultPlan.parse(["crash:0"]),  # crash every attempt
            retry=RetryPolicy(max_retries=1, base_delay_s=0.001),
            recorder_dir=recorder_dir,
        )
        runner.run_all()
        failed = runner.failures[("hmmer", Scheme.STATIC_7)]
        assert failed.kind == "crash"
        assert failed.recorder_path, "failure record lost its recorder link"
        with open(failed.recorder_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["reason"] == "injected-crash"
        kinds = [r["kind"] for r in payload["records"]]
        assert "crash" in kinds  # the fault trigger is the last thing taped
        # The journal's failure record carries the same link, so the
        # crash is explainable from the journal alone.
        contents = ResultJournal.load(tmp_path / "j.jsonl")
        journal_failure = contents.failures[("hmmer", Scheme.STATIC_7.value)]
        assert journal_failure["recorder_path"] == failed.recorder_path

    def test_results_identical_with_observability_on_and_off(self, tmp_path):
        from tests.test_fabric import _comparable

        plain = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer", "GemsFDTD"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "plain.jsonl",
        )
        plain.run_all()
        observed = ExperimentRunner(
            tiny_config(),
            workloads=["hmmer", "GemsFDTD"],
            schemes=[Scheme.STATIC_7],
            max_events=FAST,
            n_jobs=2,
            journal_path=tmp_path / "observed.jsonl",
            recorder_dir=tmp_path / "flight",
        )
        observed.run_all()
        assert set(plain.results) == set(observed.results)
        for key in plain.results:
            assert _comparable(plain.results[key]) == _comparable(
                observed.results[key]
            ), key


# ----------------------------------------------------------------------
# Serve: metrics/fleet ops + HTTP endpoint + top
# ----------------------------------------------------------------------
class TestServeObservability:
    def test_metrics_fleet_ops_and_http(self, tmp_path):
        address = tmp_path / "srv.sock"
        server = FabricServer(
            address, tmp_path / "journals", http_address="127.0.0.1:0"
        ).start()
        try:
            client = FabricClient(address, timeout_s=120)
            # Before any sweep: scrapeable, no fleet.
            text = client.metrics()
            assert "# TYPE repro_serve_sweeps_submitted gauge" in text
            assert client.fleet()["workers"] == []

            spec = SweepSpec.make(
                config_name="tiny", workloads=["hmmer"],
                schemes=["static-7"], max_events=FAST, jobs=2,
            )
            messages = list(client.submit_and_watch(spec))
            assert messages[-1]["state"] == "finished"

            text = client.metrics()
            assert "repro_fabric_jobs_completed 1" in text
            assert "repro_serve_sweeps_submitted 1" in text
            assert "repro_fleet_jobs_done 1" in text
            # Counters reconcile with the settled journal.
            journal = ResultJournal.load(
                tmp_path / "journals" / "sweep-001.jsonl"
            )
            assert len(journal.results) == 1

            fleet = client.fleet()
            assert fleet["totals"]["jobs_done"] == 1
            assert len(fleet["workers"]) == 2

            # The plain-HTTP endpoint serves the same exposition text.
            import urllib.request

            port = server._http.port
            scraped = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            )
            assert scraped.status == 200
            assert "text/plain" in scraped.headers["Content-Type"]
            body = scraped.read().decode()
            assert "repro_fabric_jobs_completed 1" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/other", timeout=10
                )

            # Heartbeats are fleet telemetry, not watch history.
            replayed = list(client.watch("sweep-001"))
            assert not any(
                m.get("event") == HEARTBEAT_EVENT for m in replayed
            )
            # status surfaces the fleet throughput trend metric.
            assert client.status()[0]["sim_events_per_sec"] > 0

            # `top --once` renders a frame from the same wire payloads.
            out = io.StringIO()
            assert run_top(str(address), once=True, stream=out) == 0
            frame = out.getvalue()
            assert "fleet: 2 worker(s)" in frame
            assert "sweep-001" in frame
        finally:
            server.stop()

    def test_http_server_standalone(self):
        server = MetricsHTTPServer("127.0.0.1:0", lambda: "x 1\n")
        server.start()
        try:
            import urllib.request

            body = urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=10
            ).read()
            assert body == b"x 1\n"
            assert server.requests_served == 1
        finally:
            server.stop()

    def test_http_rejects_bad_address(self):
        with pytest.raises(ConfigError):
            MetricsHTTPServer("no-port", lambda: "")


# ----------------------------------------------------------------------
# SweepSpec faults
# ----------------------------------------------------------------------
class TestSweepSpecFaults:
    def test_faults_round_trip(self):
        spec = SweepSpec.make(
            config_name="tiny", workloads=["hmmer"], schemes=["rrm"],
            jobs=2, faults=["crash:0:1"],
        )
        again = SweepSpec.from_json_dict(spec.to_json_dict())
        assert again == spec
        plan = again.build_fault_plan()
        assert plan is not None

    def test_no_faults_means_no_plan(self):
        spec = SweepSpec.make(config_name="tiny")
        assert spec.build_fault_plan() is None

    def test_rejects_malformed_fault(self):
        with pytest.raises(ConfigError):
            SweepSpec.make(config_name="tiny", faults=["explode:everything"])


# ----------------------------------------------------------------------
# top rendering (pure)
# ----------------------------------------------------------------------
class TestTopRendering:
    def test_frame_from_wire_payloads(self):
        fleet = {
            "totals": {
                "workers": 2, "stale_workers": 1, "jobs_done": 3,
                "sim_events_per_sec": 1500.0, "rss_bytes": 2 << 20,
            },
            "workers": [
                {"worker": 0, "pid": 10, "job": "hmmer/RRM", "attempt": 1,
                 "jobs_done": 2, "busy_s": 2.0, "sim_events": 3000,
                 "rss_bytes": 1 << 20, "age_s": 0.5, "stale": False},
                {"worker": 1, "pid": 11, "job": None, "attempt": 0,
                 "jobs_done": 1, "busy_s": 0.0, "sim_events": 0,
                 "rss_bytes": 1 << 20, "age_s": 30.0, "stale": True},
            ],
        }
        sweeps = [
            {"sweep": "sweep-001", "state": "running", "jobs": 4,
             "completed": 3, "failed": 1},
        ]
        frame = render_frame(fleet, sweeps)
        assert "fleet: 2 worker(s), 1 stale" in frame
        assert "hmmer/RRM" in frame
        assert "STALE" in frame
        assert "1 FAILED" in frame

    def test_empty_fleet_renders_placeholder(self):
        lines = format_fleet_lines({"totals": {}, "workers": []})
        assert lines[-1] == "  (no worker heartbeats yet)"
