"""Tests for the retention-integrity checker."""

import dataclasses

import pytest

from repro.memctrl.request import MemRequest, RequestType
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.sim.validation import RetentionIntegrityChecker
from repro.utils.units import s_to_ns


@pytest.fixture
def checker(modes):
    return RetentionIntegrityChecker(modes)


def completed(rtype, block, n_sets=None, finish_s=0.0):
    request = MemRequest(rtype=rtype, block=block, n_sets=n_sets)
    request.finish_time_ns = s_to_ns(finish_s)
    return request


class TestChecker:
    def test_fresh_read_is_fine(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=1.0))
        assert checker.violation_count == 0

    def test_expired_fast_read_flagged(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=3.0))
        assert checker.violation_count == 1
        violation = checker.violations[0]
        assert violation.kind == "read-expired"
        assert violation.n_sets == 3
        assert violation.age_s == pytest.approx(3.0)

    def test_refresh_rearms_retention(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.RRM_REFRESH, 0, 3, 1.9))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=3.5))
        assert checker.violation_count == 0

    def test_stale_overwrite_flagged(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 10.0))
        assert checker.violation_count == 1
        assert checker.violations[0].kind == "stale-overwrite"

    def test_expired_at_end_flagged(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.finalize(s_to_ns(5.0))
        assert checker.violation_count == 1
        assert checker.violations[0].kind == "expired-at-end"

    def test_slow_writes_have_long_retention(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 7, 0.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=3000.0))
        assert checker.violation_count == 0

    def test_global_refresh_caps_slow_age(self, modes):
        checker = RetentionIntegrityChecker(
            modes, global_refresh_interval_s=3054.0
        )
        checker.on_completion(completed(RequestType.WRITE, 0, 7, 0.0))
        # Way past the raw retention, but the self-refresh circuit keeps
        # rewriting slow data, so this is legal.
        checker.on_completion(completed(RequestType.READ, 0, finish_s=50000.0))
        assert checker.violation_count == 0

    def test_fast_age_not_capped_by_global_refresh(self, modes):
        checker = RetentionIntegrityChecker(
            modes, global_refresh_interval_s=3054.0
        )
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=3.0))
        assert checker.violation_count == 1

    def test_one_report_per_stale_window(self, checker):
        checker.on_completion(completed(RequestType.WRITE, 0, 3, 0.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=3.0))
        checker.on_completion(completed(RequestType.READ, 0, finish_s=4.0))
        assert checker.violation_count == 1


def _run_with_checker(config, scheme):
    system = System(config, "GemsFDTD", scheme)
    scaled_modes = system.modes
    interval = None
    if config.drift_scale:
        interval = scaled_modes.refresh_interval_s(scheme.global_refresh_n_sets)
    checker = RetentionIntegrityChecker(
        scaled_modes, global_refresh_interval_s=interval
    )
    system.controller.add_completion_listener(checker.on_completion)
    system.run()
    checker.finalize(system.sim.now)
    return checker


class TestEndToEndIntegrity:
    def test_rrm_preserves_all_data(self, tiny_config):
        """The RRM's selective refresh must keep every short-retention
        block valid for the whole run."""
        checker = _run_with_checker(tiny_config, Scheme.RRM)
        assert checker.checks_performed > 1000
        assert checker.violation_count == 0

    def test_fault_injection_is_detected(self, tiny_config):
        """Disabling every maintenance path (selective refresh, decay
        demotion, eviction rewrites) makes short-retention data expire —
        the checker must catch it. Run several fast retention periods so
        stale windows are guaranteed to open."""
        broken = dataclasses.replace(
            tiny_config,
            duration_s=tiny_config.duration_s * 3,
            rrm=dataclasses.replace(
                tiny_config.rrm,
                selective_refresh_enabled=False,
                decay_enabled=False,
                refresh_on_eviction=False,
            ),
        )
        checker = _run_with_checker(broken, Scheme.RRM)
        assert checker.violation_count > 0
        assert any(v.n_sets == 3 for v in checker.violations)

    def test_static7_never_expires(self, tiny_config):
        checker = _run_with_checker(tiny_config, Scheme.STATIC_7)
        assert checker.violation_count == 0
