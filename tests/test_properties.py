"""Property-based tests (hypothesis) on core data structures and models.

These check invariants across randomly generated inputs rather than fixed
examples: address-map bijectivity, drift-model monotonicity, cache/tag
LRU discipline, vector bookkeeping, queue conservation, and lifetime-model
scaling laws.
"""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.core.tag_array import RRMTagArray
from repro.memctrl.address_map import AddressMap
from repro.pcm.drift import DriftModel, DriftParameters
from repro.pcm.endurance import EnduranceModel
from repro.utils.mathx import geomean
from repro.utils.units import format_bytes, parse_size


# ----------------------------------------------------------------------
# Address map
# ----------------------------------------------------------------------
@st.composite
def address_maps(draw):
    channels = draw(st.sampled_from([1, 2, 4]))
    banks = draw(st.sampled_from([1, 2, 4, 8]))
    row_bytes = draw(st.sampled_from([256, 512, 1024]))
    rows_per_bank = draw(st.sampled_from([4, 16, 64]))
    size = channels * banks * row_bytes * rows_per_bank
    return AddressMap(
        n_channels=channels, banks_per_channel=banks,
        row_bytes=row_bytes, size_bytes=size,
    )


@given(amap=address_maps(), data=st.data())
def test_address_decode_encode_roundtrip(amap, data):
    block = data.draw(st.integers(min_value=0, max_value=amap.n_blocks - 1))
    d = amap.decode_block(block)
    assert 0 <= d.channel < amap.n_channels
    assert 0 <= d.bank < amap.banks_per_channel
    assert 0 <= d.column < amap.blocks_per_row
    assert amap.encode(d.channel, d.bank, d.row, d.column) == block


@given(amap=address_maps(), data=st.data())
def test_consecutive_blocks_interleave_channels(amap, data):
    assume(amap.n_channels > 1)
    block = data.draw(st.integers(min_value=0, max_value=amap.n_blocks - 2))
    a = amap.decode_block(block)
    b = amap.decode_block(block + 1)
    assert b.channel == (a.channel + 1) % amap.n_channels


# ----------------------------------------------------------------------
# Drift model
# ----------------------------------------------------------------------
@given(
    t1=st.floats(min_value=1.0, max_value=1e7),
    t2=st.floats(min_value=1.0, max_value=1e7),
)
def test_drift_monotonic_in_time(t1, t2):
    model = DriftModel()
    if t1 <= t2:
        assert model.resistance_ratio(t1) <= model.resistance_ratio(t2)
    else:
        assert model.resistance_ratio(t1) >= model.resistance_ratio(t2)


@given(margin=st.floats(min_value=0.01, max_value=0.5))
def test_retention_margin_inverse(margin):
    model = DriftModel()
    retention = model.retention_from_margin(margin)
    assert abs(model.margin_for_retention(retention) - margin) < 1e-9


@given(scale=st.floats(min_value=0.1, max_value=1000.0))
def test_drift_scale_linear(scale):
    base = DriftModel()
    scaled = DriftModel(DriftParameters(drift_scale=scale))
    for n in (3, 7):
        relative_error = abs(
            scaled.retention_seconds(n) * scale - base.retention_seconds(n)
        ) / base.retention_seconds(n)
        assert relative_error < 1e-9


# ----------------------------------------------------------------------
# RRM entry vector
# ----------------------------------------------------------------------
@given(offsets=st.lists(st.integers(min_value=0, max_value=63), max_size=64))
def test_vector_bits_round_trip(offsets):
    entry = RRMEntry(region=0, blocks_per_region=64)
    for offset in offsets:
        entry.set_vector_bit(offset)
    expected = sorted(set(offsets))
    assert list(entry.short_retention_offsets()) == expected
    assert entry.short_retention_count == len(expected)
    for offset in expected:
        assert entry.vector_bit(offset)


@given(
    threshold=st.integers(min_value=1, max_value=64),
    writes=st.integers(min_value=0, max_value=200),
)
def test_promotion_happens_exactly_at_threshold(threshold, writes):
    entry = RRMEntry(region=0, blocks_per_region=64)
    promoted_at = None
    for i in range(writes):
        if entry.record_dirty_write(threshold):
            assert promoted_at is None
            promoted_at = i + 1
    if writes >= threshold:
        assert promoted_at == threshold
        assert entry.hot
    else:
        assert promoted_at is None
        assert not entry.hot
    assert entry.dirty_write_counter == min(writes, threshold)


# ----------------------------------------------------------------------
# Tag array LRU
# ----------------------------------------------------------------------
@given(
    regions=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
)
@settings(max_examples=50)
def test_tag_array_occupancy_bounded(regions):
    config = RRMConfig(n_sets=4, n_ways=3)
    tags = RRMTagArray(config)
    for region in regions:
        if tags.lookup(region) is None:
            tags.allocate(region)
    assert tags.occupancy <= config.n_sets * config.n_ways
    for set_index in range(config.n_sets):
        assert tags.set_occupancy(set_index) <= config.n_ways
    # Every resident region maps to its home set.
    for entry in tags.entries():
        assert config.set_index(entry.region) in range(config.n_sets)


@given(
    regions=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
)
@settings(max_examples=50)
def test_most_recent_region_always_resident(regions):
    config = RRMConfig(n_sets=2, n_ways=2)
    tags = RRMTagArray(config)
    for region in regions:
        if tags.lookup(region) is None:
            tags.allocate(region)
    assert tags.lookup(regions[-1], touch=False) is not None


# ----------------------------------------------------------------------
# Cache conservation
# ----------------------------------------------------------------------
@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
        min_size=1, max_size=300,
    )
)
@settings(max_examples=50)
def test_cache_dirty_conservation(accesses):
    """Every dirty line is either still resident or was written back."""
    cache = Cache(CacheConfig(size_bytes=64 * 8, n_ways=2))
    written_back = []
    dirtied = set()
    for block, is_write in accesses:
        result = cache.access(block, is_write)
        if is_write:
            dirtied.add(block)
        if result.writeback_block is not None:
            written_back.append(result.writeback_block)
    resident_dirty = set(cache.dirty_blocks())
    assert resident_dirty | set(written_back) >= dirtied - resident_dirty
    # A block can never be written back if it was never dirtied.
    assert set(written_back) <= dirtied


@given(
    accesses=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300)
)
@settings(max_examples=50)
def test_cache_occupancy_bounded(accesses):
    cache = Cache(CacheConfig(size_bytes=64 * 16, n_ways=4))
    for block in accesses:
        cache.access(block, is_write=False)
    assert cache.occupancy <= 16
    assert cache.contains(accesses[-1])


# ----------------------------------------------------------------------
# Lifetime model scaling
# ----------------------------------------------------------------------
@given(
    writes=st.floats(min_value=1.0, max_value=1e12),
    window=st.floats(min_value=0.001, max_value=1e4),
    blocks=st.integers(min_value=1, max_value=1 << 32),
)
def test_lifetime_scaling_laws(writes, window, blocks):
    model = EnduranceModel()
    base = model.lifetime_seconds(writes, window, blocks)
    assert base > 0
    # Double the rate -> half the lifetime.
    halved = model.lifetime_seconds(2 * writes, window, blocks)
    assert halved * 2 == base or abs(halved * 2 - base) < 1e-6 * base
    # Double the capacity -> double the lifetime.
    doubled = model.lifetime_seconds(writes, window, 2 * blocks)
    assert abs(doubled - 2 * base) < 1e-6 * base


# ----------------------------------------------------------------------
# Utilities
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=1 << 45))
def test_format_bytes_never_crashes(n):
    assert isinstance(format_bytes(n), str)


@given(st.sampled_from(["KB", "MB", "GB"]), st.integers(min_value=1, max_value=999))
def test_parse_format_roundtrip(suffix, value):
    text = f"{value}{suffix}"
    assert format_bytes(parse_size(text)) == text


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    g = geomean(values)
    assert min(values) * 0.999999 <= g <= max(values) * 1.000001
