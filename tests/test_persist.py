"""Tests for repro.utils.persist: the atomic write-then-rename helpers
that back every durable artifact on the orchestration path (journals,
ledgers, gate pins, sweep outputs)."""

import json
import os

import pytest

from repro.utils.persist import atomic_write_text, save_json


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_no_tmp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_leaves_previous_content_and_no_tmp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "durable")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "torn")
        assert target.read_text(encoding="utf-8") == "durable"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_tmp_is_a_sibling(self, tmp_path, monkeypatch):
        # The tmp file must live next to the target (same filesystem),
        # or os.replace would degrade to a non-atomic copy.
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src"] = str(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        target = tmp_path / "deep" / "out.txt"
        target.parent.mkdir()
        atomic_write_text(target, "x")
        assert os.path.dirname(seen["src"]) == str(target.parent)


class TestSaveJson:
    def test_round_trip_with_trailing_newline(self, tmp_path):
        target = tmp_path / "payload.json"
        save_json(target, {"b": 2, "a": [1, 2]})
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"b": 2, "a": [1, 2]}

    def test_matches_previous_bare_write_format(self, tmp_path):
        # Byte-for-byte what obs.gate / obs.benchsuite wrote before they
        # adopted the atomic helper, so pinned artifacts do not churn.
        payload = {"schema": 1, "entries": []}
        target = tmp_path / "pin.json"
        save_json(target, payload)
        assert target.read_text(encoding="utf-8") == (
            json.dumps(payload, indent=2) + "\n"
        )
