"""Tests for run metrics and reporting structures."""

import pytest

from repro.pcm.endurance import EnduranceModel
from repro.sim.metrics import EnergyReport, SimResult, WearReport
from repro.sim.schemes import Scheme
from repro.utils.units import S_PER_YEAR


def make_result(**kw):
    defaults = dict(
        scheme=Scheme.RRM,
        workload="GemsFDTD",
        duration_s=0.1,
        drift_scale=50.0,
        n_blocks=1_000_000,
    )
    defaults.update(kw)
    return SimResult(**defaults)


class TestWearReport:
    def test_rates_compose(self):
        wear = WearReport(
            demand_rate=100.0,
            rrm_fast_refresh_rate=10.0,
            rrm_slow_refresh_rate=5.0,
            global_refresh_rate=20.0,
        )
        assert wear.rrm_refresh_rate == 15.0
        assert wear.refresh_rate == 35.0
        assert wear.total_rate == 135.0

    def test_per_window_scaling(self):
        wear = WearReport(demand_rate=10.0, global_refresh_rate=2.0)
        window = wear.per_window(5.0)
        assert window["write"] == 50.0
        assert window["global_refresh"] == 10.0
        assert window["total"] == 60.0


class TestEnergyReport:
    def test_totals(self):
        energy = EnergyReport(
            write_rate=4.0, read_rate=1.0,
            rrm_refresh_rate=0.5, global_refresh_rate=0.5,
        )
        assert energy.refresh_rate == 1.0
        assert energy.total_rate == 6.0
        assert energy.per_window(2.0)["total"] == 12.0


class TestSimResult:
    def test_virtual_duration(self):
        result = make_result()
        assert result.virtual_duration_s == pytest.approx(5.0)

    def test_fast_write_fraction(self):
        result = make_result(fast_writes=80, slow_writes=20)
        assert result.fast_write_fraction == pytest.approx(0.8)

    def test_fast_write_fraction_no_writes(self):
        assert make_result().fast_write_fraction == 0.0

    def test_lifetime_computation(self):
        result = make_result()
        result.wear = WearReport(demand_rate=1000.0)
        endurance = EnduranceModel(
            endurance_writes=1000, wear_leveling_efficiency=1.0
        )
        years = result.compute_lifetime(endurance)
        expected = 1000 * 1_000_000 / 1000.0 / S_PER_YEAR
        assert years == pytest.approx(expected)
        assert result.lifetime_years == years

    def test_zero_wear_infinite_lifetime(self):
        result = make_result()
        assert result.compute_lifetime(EnduranceModel()) == float("inf")

    def test_summary_contains_key_fields(self):
        result = make_result(ipc=1.234)
        result.lifetime_years = 6.4
        text = result.summary()
        assert "GemsFDTD" in text and "RRM" in text and "1.234" in text

    def test_as_dict_round_numbers(self):
        result = make_result(reads=10, writes=5, fast_writes=5)
        data = result.as_dict()
        assert data["workload"] == "GemsFDTD"
        assert data["scheme"] == "RRM"
        assert data["reads"] == 10
        assert data["fast_writes"] == 5
        assert "lifetime_years" in data
