"""Tests for the telemetry subsystem: registry, tracer, profiler, wiring."""

import json

import pytest

from repro.engine import Simulator
from repro.errors import ConfigError, TraceFormatError
from repro.resilience import Job, JobSupervisor, ResultJournal, RetryPolicy
from repro.sim.config import SystemConfig
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.telemetry import (
    NULL_TRACER,
    MetricRegistry,
    Profiler,
    TelemetryConfig,
    Tracer,
    format_summary,
    load_trace,
    summarize_trace,
    validate_chrome_trace,
)
from repro.utils.units import parse_duration


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetricRegistry:
    def test_counter_increments(self):
        registry = MetricRegistry()
        counter = registry.counter("engine.ticks")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot() == {"engine.ticks": 5}

    def test_counter_rejects_negative(self):
        counter = MetricRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_stored_and_pull_gauges(self):
        registry = MetricRegistry()
        stored = registry.gauge("a.stored")
        stored.set(3.5)
        state = {"v": 7}
        registry.gauge("a.pulled", lambda: state["v"])
        assert registry.snapshot() == {"a.stored": 3.5, "a.pulled": 7}
        state["v"] = 9
        assert registry.snapshot()["a.pulled"] == 9

    def test_pull_gauge_cannot_be_set(self):
        gauge = MetricRegistry().gauge("g", lambda: 1)
        with pytest.raises(ConfigError):
            gauge.set(2)

    def test_duplicate_name_rejected(self):
        registry = MetricRegistry()
        registry.counter("x.y")
        with pytest.raises(ConfigError):
            registry.gauge("x.y")

    def test_bad_names_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ConfigError):
            registry.counter("")
        with pytest.raises(ConfigError):
            registry.counter(" padded ")

    def test_names_prefix_filter(self):
        registry = MetricRegistry()
        registry.counter("memctrl.reads")
        registry.counter("memctrl.writes")
        registry.counter("memx.other")
        assert registry.names("memctrl") == ["memctrl.reads", "memctrl.writes"]
        # Prefixes match whole path segments, not raw string prefixes.
        assert registry.names("mem") == []

    def test_groups(self):
        registry = MetricRegistry()
        registry.counter("engine.events")
        registry.counter("pcm.wear.demand")
        registry.counter("pcm.energy.write")
        assert registry.groups() == ["engine", "pcm"]

    def test_snapshot_diff(self):
        registry = MetricRegistry()
        counter = registry.counter("a.count")
        old = registry.snapshot()
        counter.inc(10)
        new = registry.snapshot()
        assert MetricRegistry.diff(new, old) == {"a.count": 10}

    def test_diff_new_metric_against_zero(self):
        assert MetricRegistry.diff({"m": 4}, {}) == {"m": 4}

    def test_as_tree_and_render(self):
        snapshot = {"pcm.wear.demand": 3, "pcm.energy.total": 1.5, "ipc": 2}
        tree = MetricRegistry.as_tree(snapshot)
        assert tree["pcm"]["wear"]["demand"] == 3
        rendered = MetricRegistry.render_tree(snapshot)
        assert "pcm:" in rendered and "demand: 3" in rendered


class TestHistogram:
    def test_bucketing_edges(self):
        registry = MetricRegistry()
        hist = registry.histogram("lat", bounds=[10, 20])
        hist.record(9.99)  # below first bound
        hist.record(10)  # exactly a bound -> upper bucket
        hist.record(19.99)
        hist.record(20)  # exactly last bound -> overflow bucket
        hist.record(1000)
        value = hist.value()
        assert value["counts"] == [1, 2, 2]
        assert value["count"] == 5
        assert value["sum"] == pytest.approx(9.99 + 10 + 19.99 + 20 + 1000)

    def test_mean(self):
        hist = MetricRegistry().histogram("h", bounds=[1])
        assert hist.mean == 0.0
        hist.record(2)
        hist.record(4)
        assert hist.mean == 3.0

    def test_invalid_bounds(self):
        registry = MetricRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("empty", bounds=[])
        with pytest.raises(ConfigError):
            registry.histogram("unsorted", bounds=[5, 5])

    def test_diff_is_bucket_wise(self):
        registry = MetricRegistry()
        hist = registry.histogram("h", bounds=[10])
        hist.record(5)
        old = registry.snapshot()
        hist.record(15)
        hist.record(20)
        delta = MetricRegistry.diff(registry.snapshot(), old)["h"]
        assert delta["counts"] == [0, 2]
        assert delta["count"] == 2
        assert delta["sum"] == pytest.approx(35)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTracer:
    def test_instant_complete_counter(self):
        clock = _FakeClock()
        tracer = Tracer(clock)
        tracer.instant("promotion", "monitor", args={"region": 3})
        clock.t = 500.0
        tracer.complete("write", "memctrl", 100.0, 400.0, tid=2)
        tracer.counter("engine", {"events": 7})
        events = tracer.events()
        assert [e.ph for e in events] == ["i", "X", "C"]
        assert events[1].ts_ns == 100.0 and events[1].dur_ns == 400.0
        assert events[1].tid == 2
        assert tracer.categories() == ["engine", "memctrl", "monitor"]

    def test_span_measures_clock(self):
        clock = _FakeClock()
        tracer = Tracer(clock)
        with tracer.span("phase", "run"):
            clock.t = 250.0
        (event,) = tracer.events()
        assert event.ph == "X"
        assert event.ts_ns == 0.0 and event.dur_ns == 250.0

    def test_ring_mode_bounds_memory(self):
        tracer = Tracer(mode="ring", ring_size=3)
        for i in range(10):
            tracer.instant(f"e{i}")
        events = tracer.events()
        assert len(events) == 3
        assert [e.name for e in events] == ["e7", "e8", "e9"]
        assert tracer.dropped == 7

    def test_sample_mode_keeps_every_nth(self):
        tracer = Tracer(mode="sample", sample_every=3)
        for i in range(9):
            tracer.instant(f"e{i}")
        assert [e.name for e in tracer.events()] == ["e0", "e3", "e6"]
        assert tracer.dropped == 6

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            Tracer(mode="everything")
        with pytest.raises(ConfigError):
            Tracer(mode="ring", ring_size=0)
        with pytest.raises(ConfigError):
            Tracer(mode="sample", sample_every=0)

    def test_chrome_export_round_trip(self, tmp_path):
        tracer = Tracer(_FakeClock())
        tracer.set_thread_name(0, "bank0")
        tracer.instant("violation", "memctrl", args={"block": 1})
        tracer.complete("write", "memctrl", 1000.0, 2000.0)
        path = tracer.export_chrome(tmp_path / "trace.json")

        raw = json.loads(path.read_text())
        assert "traceEvents" in raw
        meta = raw["traceEvents"][0]
        assert meta["ph"] == "M" and meta["args"]["name"] == "bank0"

        events = load_trace(path)
        assert validate_chrome_trace(events) == []
        # Chrome timestamps are microseconds.
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["ts"] == 1.0 and span["dur"] == 2.0

    def test_jsonl_export_round_trip(self, tmp_path):
        tracer = Tracer(_FakeClock())
        tracer.instant("a", "cat", args={"k": 1})
        tracer.complete("b", "cat", 10.0, 5.0)
        path = tracer.export(tmp_path / "trace.jsonl")
        events = load_trace(path)
        assert len(events) == 2
        # JSONL keeps nanosecond timestamps, converted to us on load.
        assert validate_chrome_trace(events) == []

    def test_export_dispatches_on_suffix(self, tmp_path):
        tracer = Tracer(_FakeClock())
        tracer.instant("x")
        chrome = tracer.export(tmp_path / "t.json")
        assert "traceEvents" in json.loads(chrome.read_text())
        jsonl = tracer.export(tmp_path / "t.jsonl")
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "x"

    def test_summarize(self):
        tracer = Tracer(_FakeClock())
        tracer.complete("long", "engine", 0.0, 9000.0)
        tracer.complete("short", "engine", 0.0, 1000.0)
        tracer.counter("engine", {"events": 3})
        summary = summarize_trace(
            [e.to_chrome() for e in tracer.events()], top_spans=1
        )
        assert summary.n_events == 3
        assert summary.by_phase == {"X": 2, "C": 1}
        assert summary.longest_spans[0][1] == "long"


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x")
        NULL_TRACER.complete("y", "c", 0, 1)
        NULL_TRACER.counter("z", {"v": 1})
        NULL_TRACER.set_thread_name(0, "t")
        with NULL_TRACER.span("s"):
            pass
        assert NULL_TRACER.events() == []


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_periodic_sampling(self):
        sim = Simulator()
        registry = MetricRegistry()
        registry.gauge("engine.now", lambda: sim.now)
        tracer = Tracer(lambda: sim.now)
        profiler = Profiler(
            sim, registry, tracer, interval_ns=100.0, keep_samples=True
        )
        profiler.start()
        sim.run(until=1000.0)
        assert profiler.ticks == 10
        assert len(profiler.samples) == 10
        counters = [e for e in tracer.events() if e.ph == "C"]
        assert len(counters) == 10
        assert counters[0].name == "engine"
        assert counters[0].args == {"now": 100.0}

    def test_histograms_skipped_in_counter_tracks(self):
        sim = Simulator()
        registry = MetricRegistry()
        registry.gauge("m.scalar", lambda: 1)
        hist = registry.histogram("m.hist", bounds=[10])
        hist.record(5)
        tracer = Tracer(lambda: sim.now)
        Profiler(sim, registry, tracer, interval_ns=50.0).start()
        sim.run(until=50.0)
        (event,) = [e for e in tracer.events() if e.ph == "C"]
        assert event.args == {"scalar": 1}

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            Profiler(Simulator(), MetricRegistry(), interval_ns=0)

    def test_double_start_rejected(self):
        profiler = Profiler(Simulator(), MetricRegistry(), interval_ns=1.0)
        profiler.start()
        with pytest.raises(ConfigError):
            profiler.start()


# ----------------------------------------------------------------------
# Engine metrics (satellite: scheduled/cancelled exposure)
# ----------------------------------------------------------------------
class TestSimulatorMetrics:
    def test_scheduled_and_cancelled_counts(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        doomed = sim.schedule_at(20.0, lambda: None)
        doomed.cancel()
        sim.run()
        assert sim.events_scheduled == 2
        assert sim.events_processed == 1
        assert sim.events_cancelled == 1

    def test_register_metrics(self):
        sim = Simulator()
        registry = MetricRegistry()
        sim.register_metrics(registry)
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        snap = registry.snapshot("engine")
        assert snap["engine.events_processed"] == 1
        assert snap["engine.events_scheduled"] == 1
        assert snap["engine.events_cancelled"] == 0
        assert snap["engine.pending_events"] == 0


# ----------------------------------------------------------------------
# End-to-end wiring
# ----------------------------------------------------------------------
def _strip_wall_time(result):
    d = result.to_json_dict()
    d.pop("wall_time_s", None)
    # Engine mechanics, not simulation statistics: a profiler's periodic
    # ticks are themselves events, so an observed run legitimately
    # processes more of them. The simulation-statistics surface that
    # must stay bit-identical is as_dict(), which excludes both.
    d.pop("sim_events", None)
    return d


class TestSystemTelemetry:
    def test_traced_run_matches_untraced(self):
        """Tracing must not perturb the simulation (determinism)."""
        config = SystemConfig.tiny()
        plain = System(config, "hmmer", Scheme.RRM).run()
        traced_system = System(
            config,
            "hmmer",
            Scheme.RRM,
            telemetry=TelemetryConfig(metrics_interval_s=0.0005),
        )
        traced = traced_system.run()
        assert _strip_wall_time(plain) == _strip_wall_time(traced)
        assert traced_system.telemetry.tracer.events()

    def test_trace_covers_subsystems(self, tmp_path):
        """The exported trace must carry events from >= 4 subsystems."""
        system = System(
            SystemConfig.tiny(),
            "hmmer",
            Scheme.RRM,
            telemetry=TelemetryConfig(metrics_interval_s=0.0005),
        )
        system.run()
        tracer = system.telemetry.tracer
        categories = set(tracer.categories())
        assert {"engine", "memctrl", "cpu", "pcm", "rrm"} <= categories

        path = tracer.export_chrome(tmp_path / "trace.json")
        events = load_trace(path)
        assert validate_chrome_trace(events) == []
        assert len({e.get("cat") for e in events if e["ph"] != "M"}) >= 4

    def test_registry_always_available(self):
        """Harvesting goes through the registry even with telemetry off."""
        system = System(SystemConfig.tiny(), "hmmer", Scheme.RRM)
        assert system.telemetry.enabled is False
        names = system.telemetry.registry.groups()
        assert {"engine", "memctrl", "cpu", "pcm", "rrm"} <= set(names)
        result = system.run()
        snap = system.telemetry.registry.snapshot()
        assert result.reads == snap["memctrl.reads_completed"]
        assert result.instructions == snap["cpu.retired_instructions"]

    def test_detailed_metrics_add_histograms(self):
        system = System(
            SystemConfig.tiny(), "hmmer", Scheme.RRM,
            telemetry=TelemetryConfig(),
        )
        system.run()
        snap = system.telemetry.registry.snapshot()
        hist = snap["memctrl.read_latency_hist_ns"]
        assert hist["count"] > 0


class TestTelemetryConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(mode="nope")
        with pytest.raises(ConfigError):
            TelemetryConfig(ring_size=0)
        with pytest.raises(ConfigError):
            TelemetryConfig(metrics_interval_s=0)


# ----------------------------------------------------------------------
# Resilience telemetry (satellite: journal + FailedRun instants)
# ----------------------------------------------------------------------
def _ok_job():
    return 42


def _bad_job():
    raise ValueError("boom")


class TestSupervisorEvents:
    def test_lifecycle_events_for_success(self):
        seen = []
        supervisor = JobSupervisor(
            on_event=lambda name, args: seen.append((name, args))
        )
        supervisor.run([Job(key=("w", "s"), fn=_ok_job)])
        assert [name for name, _ in seen] == ["job.attempt", "job.result"]
        assert seen[0][1]["key"] == ["w", "s"]

    def test_failed_run_emits_instant(self):
        seen = []
        supervisor = JobSupervisor(
            retry=RetryPolicy(max_retries=1),
            sleep=lambda s: None,
            on_event=lambda name, args: seen.append((name, args)),
        )
        _, failures = supervisor.run([Job(key=("w", "s"), fn=_bad_job)])
        assert ("w", "s") in failures
        names = [name for name, _ in seen]
        assert names == ["job.attempt", "job.retry", "job.attempt", "job.failed"]
        failed_args = seen[-1][1]
        assert failed_args["kind"] == "error"
        assert failed_args["attempts"] == 2
        assert "boom" in failed_args["message"]


class TestJournalTelemetry:
    def test_appends_emit_instants(self, tmp_path):
        tracer = Tracer(_FakeClock())
        journal = ResultJournal(tmp_path / "j.jsonl", tracer=tracer)
        journal.start({"seed": 1})
        journal.append_result("hmmer", "rrm", {"ipc": 1.0})
        journal.append_failure("mcf", "s7", {"kind": "timeout"})
        events = tracer.events()
        assert [e.name for e in events] == ["journal.append", "journal.append"]
        assert events[0].cat == "journal"
        assert events[0].args["type"] == "result"
        assert events[1].args["workload"] == "mcf"


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
class TestParseDuration:
    def test_suffixes(self):
        assert parse_duration("1ms") == pytest.approx(0.001)
        assert parse_duration("250us") == pytest.approx(250e-6)
        assert parse_duration("10ns") == pytest.approx(10e-9)
        assert parse_duration("1.5s") == pytest.approx(1.5)

    def test_bare_numbers_are_seconds(self):
        assert parse_duration("2") == 2.0
        assert parse_duration(0.25) == 0.25

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_duration("fast")
        with pytest.raises(ConfigError):
            parse_duration("10 parsecs")


# ----------------------------------------------------------------------
# Summary robustness: empty, truncated, and garbage traces
# ----------------------------------------------------------------------
class TestSummaryRobustness:
    def test_empty_event_list_summarizes_and_formats(self):
        summary = summarize_trace([])
        assert summary.n_events == 0
        assert summary.duration_us == 0.0
        text = format_summary(summary)
        assert "events          0" in text
        assert "longest spans" not in text

    def test_metadata_only_trace_formats(self):
        summary = summarize_trace([{"ph": "M", "name": "meta"}])
        assert summary.n_events == 0
        assert "events          0" in format_summary(summary)

    def test_garbage_events_do_not_crash(self):
        # Non-dict rows, None phases, and non-numeric fields all show up
        # in the digest (bucketed under "?") instead of raising.
        events = [
            42,
            {"ph": None, "name": None},
            {"ph": "X", "name": 3, "dur": "slow", "ts": None},
            {"ph": "C", "name": None, "args": None},
        ]
        summary = summarize_trace(events)
        assert summary.n_events == 4
        assert summary.by_phase.get("?") == 2
        text = format_summary(summary)
        assert "?" in text

    def test_load_trace_rejects_non_list_trace_events(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": {}}')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_load_trace_empty_trace_events_ok(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}')
        assert load_trace(path) == []
        assert "no events" in " ".join(validate_chrome_trace([]))


# ----------------------------------------------------------------------
# Registry snapshot/diff edge cases
# ----------------------------------------------------------------------
class TestRegistryEdgeCases:
    def test_prefix_matches_whole_segments_only(self):
        registry = MetricRegistry()
        registry.counter("a.b").inc()
        registry.counter("a.b.c").inc(2)
        registry.counter("a.bc").inc(3)
        assert registry.names("a.b") == ["a.b", "a.b.c"]
        assert registry.snapshot("a.b") == {"a.b": 1, "a.b.c": 2}
        assert registry.snapshot("a") == {"a.b": 1, "a.b.c": 2, "a.bc": 3}
        assert registry.snapshot("a.b.c.d") == {}

    def test_diff_metric_only_in_new_counts_from_zero(self):
        assert MetricRegistry.diff({"fresh": 5}, {}) == {"fresh": 5}

    def test_diff_drops_vanished_metrics(self):
        assert MetricRegistry.diff({}, {"gone": 7}) == {}

    def test_diff_disjoint_snapshots(self):
        out = MetricRegistry.diff({"a": 1}, {"b": 2})
        assert out == {"a": 1}


# ----------------------------------------------------------------------
# Tracer bounds at exact overflow boundaries
# ----------------------------------------------------------------------
class TestTracerBoundaries:
    def test_ring_exact_capacity_drops_nothing(self):
        tracer = Tracer(mode="ring", ring_size=3)
        for i in range(3):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) == 3
        assert tracer.dropped == 0

    def test_ring_one_past_capacity_drops_oldest(self):
        tracer = Tracer(mode="ring", ring_size=3)
        for i in range(4):
            tracer.instant(f"e{i}")
        assert [e.name for e in tracer.events()] == ["e1", "e2", "e3"]
        assert tracer.dropped == 1

    def test_sample_boundary_keeps_first_of_each_stride(self):
        tracer = Tracer(mode="sample", sample_every=3)
        for i in range(3):
            tracer.instant(f"e{i}")
        # Exactly one stride: only its first event is kept.
        assert [e.name for e in tracer.events()] == ["e0"]
        assert tracer.dropped == 2
        tracer.instant("e3")  # first event of the next stride is kept
        assert [e.name for e in tracer.events()] == ["e0", "e3"]
        assert tracer.dropped == 2

    def test_sample_every_one_is_lossless(self):
        tracer = Tracer(mode="sample", sample_every=1)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) == 5
        assert tracer.dropped == 0
