"""Paper Figure 10: memory energy consumption split by source.

Energy per 5 virtual seconds in normalised write-energy units, split into
demand writes, reads, RRM refreshes and global refreshes. Shape targets:
refresh energy dominates Static-3/Static-4; RRM's refresh energy is
trivial; RRM's total is moderately above Static-7's (the paper measures
+32.8%, driven by RRM simply executing more work in the same time).
"""

from benchmarks.common import workloads_under_test, write_report
from repro.analysis.report import energy_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, all_schemes


def bench_fig10_energy(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = all_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }

    def mean_rates(scheme):
        writes, reads, rrm, glob = 0.0, 0.0, 0.0, 0.0
        for workload in workloads:
            energy = sweep.get(workload, scheme).energy
            writes += energy.write_rate
            reads += energy.read_rate
            rrm += energy.rrm_refresh_rate
            glob += energy.global_refresh_rate
        n = len(workloads)
        return writes / n, reads / n, rrm / n, glob / n

    text = energy_report(
        runner, schemes,
        title=("Figure 10: memory energy per 5s window, normalised to "
               "Static-7-SETs total"),
    )
    s7_total = sum(mean_rates(Scheme.STATIC_7))
    rrm_total = sum(mean_rates(Scheme.RRM))
    text += (
        f"\n\nRRM total energy vs Static-7: {rrm_total / s7_total:.2f}x"
        f"  [paper: 1.33x]"
    )
    write_report("fig10_energy", text)

    # Shape: refresh energy dominates the fast statics...
    for scheme in (Scheme.STATIC_3, Scheme.STATIC_4):
        writes, reads, rrm, glob = mean_rates(scheme)
        assert glob > writes, scheme
    # ...but is trivial for the RRM scheme.
    writes, reads, rrm, glob = mean_rates(Scheme.RRM)
    assert rrm + glob < 0.5 * writes
    # RRM's total is above Static-7's (more work done) but not wildly so.
    assert 1.0 < rrm_total / s7_total < 2.5
