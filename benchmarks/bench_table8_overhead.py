"""Paper Table VIII: RRM hardware overhead per LLC coverage rate.

Pure arithmetic over the entry format of Section IV-C; verifies the
paper's exact numbers (48KB/96KB/192KB/384KB and their LLC percentages)
at the full-scale 6MB LLC.
"""

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.core.config import RRMConfig
from repro.utils.units import format_bytes, parse_size

PAPER_ROWS = {
    2: (128, "48KB", 0.78),
    4: (256, "96KB", 1.56),
    8: (512, "192KB", 3.12),
    16: (1024, "384KB", 6.25),
}


def bench_table8_overhead(benchmark):
    llc = parse_size("6MB")

    def build():
        return {
            rate: RRMConfig().with_coverage_rate(llc, rate)
            for rate in PAPER_ROWS
        }

    configs = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for rate, (sets, storage, pct) in sorted(PAPER_ROWS.items()):
        config = configs[rate]
        assert config.n_sets == sets
        assert format_bytes(config.storage_bytes) == storage
        actual_pct = 100 * config.storage_bytes / llc
        assert abs(actual_pct - pct) < 0.01
        rows.append([
            f"{rate}x" + (" (default)" if rate == 4 else ""),
            f"{config.n_sets} sets, {config.n_ways} ways",
            format_bytes(config.storage_bytes),
            f"{actual_pct:.2f}% of LLC",
        ])

    write_report(
        "table8_overhead",
        format_table(
            ["LLC Coverage", "Configuration", "Overhead", "Relative"],
            rows,
            title="Table VIII: RRM configuration for different LLC coverage",
        ),
    )
