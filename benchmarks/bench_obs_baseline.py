"""Pinned observability baseline: the core suite feeding the run ledger.

Not a paper figure — this bench is the *performance contract* of the
repo itself. It runs the fixed ``repro.obs.benchsuite.CORE_SUITE``
matrix (tiny config, seed 1), appends every cell to the repo-root run
ledger, refreshes ``BENCH_core.json``, and gates the fresh numbers
against the committed baseline in ``benchmarks/obs_baseline.json``.

Because the simulation is deterministic per seed, any metric drift on an
unchanged configuration is a code change. When a change is *intentional*
(an optimisation, a model fix), re-pin with::

    repro-rrm obs bench --ledger obs-ledger.jsonl \
        --baseline-out benchmarks/obs_baseline.json

and commit the refreshed baseline + BENCH_core.json alongside the code.

Runs standalone (``python benchmarks/bench_obs_baseline.py``) or under
pytest-benchmark (``pytest benchmarks/bench_obs_baseline.py``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from benchmarks.common import write_report
from repro.obs import (
    compare_samples,
    load_baseline,
    run_core_suite,
    samples_from_entries,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).parent / "obs_baseline.json"


def run_suite(
    *,
    ledger_path=None,
    bench_json_path=None,
    baseline_path=DEFAULT_BASELINE,
    pin: bool = False,
):
    """Run the pinned suite; returns ``(outcome, gate_report_or_None)``."""
    outcome = run_core_suite(
        ledger_path=ledger_path,
        bench_json_path=bench_json_path,
        baseline_out=baseline_path if pin else None,
        progress=lambda line: print(line, file=sys.stderr),
    )
    report = None
    if not pin and Path(baseline_path).exists():
        report = compare_samples(
            load_baseline(baseline_path),
            samples_from_entries(outcome.entries),
        )
    return outcome, report


def bench_obs_baseline(benchmark, tmp_path):
    """Pytest entry: suite runs once, and must gate green vs the pinned
    baseline (wall_time_s aside, the metrics are deterministic)."""

    state = {}

    def once():
        state["outcome"], state["report"] = run_suite(
            ledger_path=tmp_path / "obs-ledger.jsonl",
            bench_json_path=tmp_path / "BENCH_core.json",
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    outcome, report = state["outcome"], state["report"]
    assert len(outcome.entries) == 4
    lines = [
        f"{e.name:<32} ipc={e.metrics.get('ipc', 0.0):.4f}"
        for e in outcome.entries
    ]
    if report is not None:
        lines.append("")
        lines.append(report.format_text())
        assert not report.regressions, report.format_text()
    write_report("obs_baseline", "\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ledger",
        default=str(REPO_ROOT / "obs-ledger.jsonl"),
        help="run ledger to append to (default: repo-root obs-ledger.jsonl)",
    )
    parser.add_argument(
        "--bench-json",
        default=str(REPO_ROOT / "BENCH_core.json"),
        help="suite summary to write (default: repo-root BENCH_core.json)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="gate baseline to compare against (or to write with --pin)",
    )
    parser.add_argument(
        "--pin",
        action="store_true",
        help="re-pin the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)
    outcome, report = run_suite(
        ledger_path=args.ledger,
        bench_json_path=args.bench_json,
        baseline_path=args.baseline,
        pin=args.pin,
    )
    for entry in outcome.entries:
        print(f"  {entry.name:<32} ipc={entry.metrics.get('ipc', 0.0):.4f}")
    if args.pin:
        print(f"baseline pinned: {args.baseline}")
        return 0
    if report is None:
        print(f"no baseline at {args.baseline}; run with --pin to create it")
        return 0
    print(report.format_text())
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
