"""Substrate study: the Start-Gap wear-levelling assumption (Table V).

The paper does not simulate wear levelling; it assumes a Start-Gap-style
scheme achieving 95% of the uniform-wear lifetime. This bench measures
that assumption instead of taking it on faith: it replays the simulator's
own region-skewed write stream (the same hot/warm/cold structure the RRM
sees) through a real Start-Gap remapper and reports the achieved
levelling efficiency at several gap intervals.

Expected shape: unlevelled efficiency is tiny (lifetime limited by the
hottest block), and Start-Gap recovers most of the ideal lifetime, with
smaller gap intervals levelling better at a higher write overhead.
"""


from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.pcm.wear_leveling import LeveledWearSimulator, StartGapLeveler
from repro.workloads.events import EV_WRITE
from repro.workloads.spec2006 import get_benchmark
from repro.workloads.synthetic import RegionTrafficGenerator

#: Lines under management. Kept small so the gap completes multiple full
#: rotations within the sampled stream (Start-Gap levels on the timescale
#: of whole-device rotations); efficiency is scale-free.
N_LINES = 128
SAMPLE_WRITES = 1_000_000


def _write_stream(n_writes):
    """Block-level writes from the GemsFDTD generator, folded onto the
    managed line range (preserving the hot/cold skew)."""
    profile = get_benchmark("GemsFDTD").scaled_footprint(1 / 16).traffic
    generator = RegionTrafficGenerator(profile, seed=11)
    produced = 0
    for kind, _, block, _ in iter(generator):
        if kind == EV_WRITE:
            yield block % N_LINES
            produced += 1
            if produced >= n_writes:
                return


def bench_wear_leveling(benchmark):
    def run():
        outcomes = {}
        # Unlevelled baseline.
        unlevelled = [0] * (N_LINES + 1)
        for line in _write_stream(SAMPLE_WRITES):
            unlevelled[line] += 1
        outcomes["none"] = (
            StartGapLeveler.leveling_efficiency(unlevelled), 0.0
        )
        for interval in (4, 16, 64):
            simulator = LeveledWearSimulator(
                StartGapLeveler(n_lines=N_LINES, gap_write_interval=interval)
            )
            for line in _write_stream(SAMPLE_WRITES):
                simulator.write(line)
            overhead = simulator.leveler.gap_moves / SAMPLE_WRITES
            outcomes[f"start-gap/{interval}"] = (
                simulator.efficiency(), overhead
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{eff:.1%}", f"{overhead:.2%}"]
        for name, (eff, overhead) in outcomes.items()
    ]
    write_report(
        "wear_leveling",
        format_table(
            ["scheme", "levelling efficiency", "extra writes"],
            rows,
            title=("Start-Gap wear levelling on the GemsFDTD write skew "
                   f"({SAMPLE_WRITES} writes over {N_LINES} lines)"),
        ),
    )

    none_eff = outcomes["none"][0]
    tight_eff, tight_overhead = outcomes["start-gap/4"]
    loose_eff, loose_overhead = outcomes["start-gap/64"]
    # Unlevelled wear is hot-spot limited; Start-Gap recovers nearly the
    # whole ideal lifetime — the paper's 95% assumption (Table V).
    assert none_eff < 0.75
    assert tight_eff > 0.90
    assert loose_eff > 0.85
    assert tight_eff > loose_eff
    # Overhead is one copy per interval writes.
    assert tight_overhead > loose_overhead
    assert abs(tight_overhead - 1 / 4) < 0.01
