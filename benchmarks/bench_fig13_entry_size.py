"""Paper Figure 13: sensitivity to the RRM entry coverage size.

Varies the Retention Region size over {2KB, 4KB, 8KB, 16KB} at constant
total coverage (the set count compensates). Shape targets (paper Section
VI-F): 2KB entries perform considerably worse — half-size regions
accumulate dirty writes at half the rate and fail to reach hot_threshold
— while 4/8/16KB perform similarly.
"""

from benchmarks.common import SENSITIVITY_WORKLOADS, write_report
from repro.analysis.report import format_table
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean
from repro.utils.units import format_bytes

REGION_SIZES = [2048, 4096, 8192, 16384]


def bench_fig13_entry_size(sweep, benchmark):
    workloads = SENSITIVITY_WORKLOADS
    base_rrm = sweep.base.rrm

    def variant_name(region_bytes):
        if region_bytes == base_rrm.region_bytes:
            return "default"
        return f"region={region_bytes}"

    def run_variants():
        for region_bytes in REGION_SIZES:
            variant = variant_name(region_bytes)
            if variant != "default":
                sweep.register_variant(
                    variant,
                    sweep.base.with_rrm(
                        base_rrm.with_region_bytes(region_bytes)
                    ),
                )
            sweep.ensure(workloads, [Scheme.RRM], variant)
        sweep.ensure(workloads, [Scheme.STATIC_7])

    benchmark.pedantic(run_variants, rounds=1, iterations=1)

    baselines = [sweep.get(w, Scheme.STATIC_7) for w in workloads]
    rows = []
    speedups = {}
    for region_bytes in REGION_SIZES:
        variant = variant_name(region_bytes)
        results = [sweep.get(w, Scheme.RRM, variant) for w in workloads]
        speedups[region_bytes] = geomean(
            [r.ipc / b.ipc for r, b in zip(results, baselines)]
        )
        lifetime = geomean([r.lifetime_years for r in results])
        fast_share = sum(r.fast_write_fraction for r in results) / len(results)
        rows.append([
            format_bytes(region_bytes)
            + (" (default)" if variant == "default" else ""),
            speedups[region_bytes],
            lifetime,
            f"{fast_share:.0%}",
        ])

    write_report(
        "fig13_entry_size",
        format_table(
            ["entry coverage", "speedup vs S7", "lifetime (y)", "fast writes"],
            rows,
            title=("Figure 13: entry-coverage-size sweep "
                   f"(geomean over {', '.join(workloads)})"),
        ),
    )

    # Shape: 2KB at or below 4KB (the paper sees a considerably larger
    # 2KB penalty; our synthetic warm tier — the traffic that halved
    # entries fail to promote — is a smaller share of writes, so the
    # direction reproduces but not the magnitude; see EXPERIMENTS.md).
    assert speedups[2048] <= speedups[4096] * 1.01, speedups
    # 8KB/16KB close to 4KB (hot arrays are contiguous, so wider entries
    # stay accurate).
    for region_bytes in (8192, 16384):
        assert abs(speedups[region_bytes] - speedups[4096]) < (
            0.08 * speedups[4096]
        ), speedups
