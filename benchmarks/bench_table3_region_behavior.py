"""Paper Table III: region-granularity write behaviour of GemsFDTD.

Runs 4 copies of GemsFDTD under the slow baseline, records every demand
write, and regenerates the write-interval histogram. Shape targets from
the paper: the 10^6-10^7 ns bin dominates writes (~77%), the 10^7-10^8 ns
bin takes ~16%, and the overwhelming majority of regions are never
written.
"""

from benchmarks.common import base_config, write_report
from repro.analysis.regions import RegionIntervalAnalyzer
from repro.analysis.report import format_table
from repro.sim.schemes import Scheme
from repro.sim.system import System


def bench_table3_region_behavior(benchmark):
    config = base_config()
    analyzer = RegionIntervalAnalyzer(
        drift_scale=config.drift_scale,
        total_regions=config.memory.size_bytes // 4096,
    )

    def run():
        system = System(
            config, "GemsFDTD", Scheme.STATIC_7,
            write_trace_sink=analyzer.record,
        )
        return system.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    histogram = analyzer.histogram()
    rows = [
        [row.label, row.regions, f"{row.region_pct:.1f}%",
         row.writes, f"{row.write_pct:.2f}%"]
        for row in histogram
    ]
    write_report(
        "table3_region_behavior",
        format_table(
            ["Average Write Interval", "# Regions", "% Regions",
             "# Writes", "% Writes"],
            rows,
            title=(f"Table III: GemsFDTD region write behaviour "
                   f"({result.writes} demand writes)"),
        ),
    )

    by_label = {row.label: row for row in histogram}
    # Shape assertions (paper: 76.64% / 15.6% / 97.8% never written).
    assert by_label["10^6 ns to 10^7 ns"].write_pct > 50.0
    assert by_label["never written"].region_pct > 90.0
    assert analyzer.hot_write_share(1e8) > 0.85
