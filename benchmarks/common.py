"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures. Runs are
expensive (seconds each in pure Python), so a session-wide
:class:`SweepCache` memoises (config-variant, workload, scheme) results:
the main performance/lifetime/wear/energy figures all share one sweep,
and sensitivity benches only add their own variant cells.

Environment knobs:

- ``REPRO_BENCH_QUICK=1``   use the tiny configuration (smoke run);
- ``REPRO_BENCH_FULL=1``    run all 11 workloads instead of the default
  representative subset;
- ``REPRO_BENCH_SEED=N``    change the simulation seed;
- ``REPRO_BENCH_RETRIES=N`` retries per failed simulation (default 1);
- ``REPRO_BENCH_JOURNAL=PATH`` checkpoint completed cells to a JSONL
  journal (see :mod:`repro.resilience.journal`) and reload them on the
  next session, so an interrupted or crashed bench run resumes instead
  of recomputing the whole sweep.

Reports are printed and also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.resilience import ResultJournal, RetryPolicy, run_with_retry
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.workloads.mixes import all_workload_names

RESULTS_DIR = Path(__file__).parent / "results"

#: Representative subset used by default (one light, one pointer-chasing,
#: one streaming, two stencil-heavy, one mix); REPRO_BENCH_FULL runs all.
DEFAULT_WORKLOADS = ["GemsFDTD", "hmmer", "lbm", "libquantum", "mcf", "MIX_2"]

#: Workloads used by the sensitivity sweeps (Figs 11-13).
SENSITIVITY_WORKLOADS = ["GemsFDTD", "lbm", "mcf"]

ALL_SCHEMES = [
    Scheme.STATIC_7,
    Scheme.STATIC_6,
    Scheme.STATIC_5,
    Scheme.STATIC_4,
    Scheme.STATIC_3,
    Scheme.RRM,
]


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def workloads_under_test() -> List[str]:
    if os.environ.get("REPRO_BENCH_FULL", "") == "1":
        return all_workload_names()
    return list(DEFAULT_WORKLOADS)


def base_config() -> SystemConfig:
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1"))
    if quick_mode():
        return SystemConfig.tiny(seed=seed)
    return SystemConfig.scaled(seed=seed)


class SweepCache:
    """Memoises simulation results across the whole bench session.

    Cells are keyed by (variant, workload, scheme). ``variant`` names a
    configuration derived from the base config — ``"default"`` for the
    main sweep, or e.g. ``"threshold=8"`` for sensitivity variants
    registered via :meth:`config_for`.

    Runs go through the resilience layer: transient failures are retried
    under a deterministic backoff policy, and with ``REPRO_BENCH_JOURNAL``
    set every completed cell is checkpointed atomically and reloaded on
    the next session, so a crashed bench run loses at most the cell it
    was computing.
    """

    def __init__(self) -> None:
        self.base = base_config()
        self._configs: Dict[str, SystemConfig] = {"default": self.base}
        self._results: Dict[Tuple[str, str, Scheme], SimResult] = {}
        self.runs_executed = 0
        self.retry = RetryPolicy(
            max_retries=int(os.environ.get("REPRO_BENCH_RETRIES", "1"))
        )
        self._journal: Optional[ResultJournal] = None
        journal_path = os.environ.get("REPRO_BENCH_JOURNAL", "")
        if journal_path:
            self._journal = ResultJournal(journal_path)
            self._load_journal(journal_path)

    def _load_journal(self, journal_path: str) -> None:
        """Reload previously checkpointed cells; start fresh otherwise.

        Journal keys pack the variant into the workload slot as
        ``variant|workload`` so the (workload, scheme) journal schema
        carries the cache's three-part key unchanged.
        """
        try:
            contents = ResultJournal.load(journal_path)
        except FileNotFoundError:
            self._journal.start({"seed": self.base.seed})
            return
        for (packed, scheme_name), record in contents.results.items():
            variant, _, workload = packed.partition("|")
            self._results[(variant, workload, Scheme(scheme_name))] = (
                SimResult.from_json_dict(record)
            )
        self._journal.resume_from(contents, {"seed": self.base.seed})

    def register_variant(self, name: str, config: SystemConfig) -> None:
        existing = self._configs.get(name)
        if existing is not None and existing != config:
            raise ValueError(f"variant {name!r} already registered differently")
        self._configs[name] = config

    def config_for(self, variant: str) -> SystemConfig:
        return self._configs[variant]

    def get(
        self, workload: str, scheme: Scheme, variant: str = "default"
    ) -> SimResult:
        key = (variant, workload, scheme)
        if key not in self._results:
            config = self._configs[variant]
            result = run_with_retry(
                run_workload,
                (config, workload, scheme),
                key=(variant, workload, scheme.value),
                retry=self.retry,
                seed=config.seed,
            )
            self._results[key] = result
            self.runs_executed += 1
            if self._journal is not None:
                self._journal.append_result(
                    f"{variant}|{workload}", scheme.value, result.to_json_dict()
                )
        return self._results[key]

    def ensure(
        self,
        workloads: Iterable[str],
        schemes: Iterable[Scheme],
        variant: str = "default",
    ) -> int:
        """Run every missing (workload, scheme) cell; returns how many
        simulations actually executed."""
        before = self.runs_executed
        for workload in workloads:
            for scheme in schemes:
                self.get(workload, scheme, variant)
        return self.runs_executed - before


def write_report(name: str, text: str) -> Path:
    """Persist a bench report under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def geomean_over(values: Iterable[float]) -> float:
    from repro.utils.mathx import geomean

    return geomean(values)
