"""Paper Table VII: workload MPKIs.

The LLC-level generators are parameterised directly by the paper's MPKI
values; this bench verifies that the *realised* miss rate of each
generated stream matches its target, and prints the Table VII layout. It
also measures MPKI the long way — an instruction-level stream filtered
through the full cache hierarchy — for one workload, tying the two
workload paths together.
"""

import itertools

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.workloads.cpu_trace import CpuAccessGenerator, CpuTraceProfile
from repro.workloads.events import EV_READ
from repro.workloads.spec2006 import BENCHMARKS
from repro.workloads.synthetic import RegionTrafficGenerator

SAMPLE_EVENTS = 120_000


def _realised_mpki(name: str) -> float:
    profile = BENCHMARKS[name].traffic
    generator = RegionTrafficGenerator(profile, seed=1)
    instructions = 0
    misses = 0
    for kind, gap, _, _ in itertools.islice(iter(generator), SAMPLE_EVENTS):
        instructions += gap
        if kind == EV_READ:
            misses += 1
    return 1000.0 * misses / instructions


def bench_table7_mpki(benchmark):
    realised = benchmark.pedantic(
        lambda: {name: _realised_mpki(name) for name in sorted(BENCHMARKS)},
        rounds=1, iterations=1,
    )

    rows = []
    for name in sorted(BENCHMARKS, key=str.lower):
        paper = BENCHMARKS[name].paper_mpki
        rows.append([name, paper, realised[name],
                     f"{100 * (realised[name] / paper - 1):+.1f}%"])
        assert abs(realised[name] / paper - 1) < 0.10, name

    # The hierarchy path: one instruction-level stream through real caches.
    hierarchy = CacheHierarchy(HierarchyConfig.scaled(factor=32, n_cores=1))
    generator = CpuAccessGenerator(
        CpuTraceProfile(reuse_fraction=0.75, frame_blocks=4096), seed=3
    )
    instructions = 0
    for gap, block, is_write in itertools.islice(iter(generator), 150_000):
        instructions += gap
        hierarchy.access(0, block, is_write)
    hierarchy_mpki = hierarchy.mpki([instructions])

    text = format_table(
        ["Workload", "Paper MPKI", "Realised MPKI", "error"],
        rows,
        title="Table VII: workload MPKIs (generator targets vs realised)",
    )
    text += (
        f"\n\nfull-hierarchy cross-check: synthetic CPU stream through "
        f"L1/L2/LLC -> MPKI {hierarchy_mpki:.2f} "
        f"(hierarchy path exercises the same filtering the generators model)"
    )
    write_report("table7_mpki", text)
    assert hierarchy_mpki > 0
