"""Paper Figure 11: aggressiveness control through hot_threshold.

Sweeps hot_threshold over {8, 16, 32, 64} on the sensitivity workloads.
Shape targets (paper Section VI-D): performance falls and lifetime rises
as the threshold increases; threshold 8 buys extra performance (paper:
+9.0% over the default 16) while keeping a multi-year lifetime.
"""

from benchmarks.common import (
    SENSITIVITY_WORKLOADS,
    write_report,
)
from repro.analysis.report import format_table
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean

THRESHOLDS = [8, 16, 32, 64]


def bench_fig11_hot_threshold(sweep, benchmark):
    workloads = SENSITIVITY_WORKLOADS

    def run_variants():
        for threshold in THRESHOLDS:
            if threshold == sweep.base.rrm.hot_threshold:
                variant = "default"
            else:
                variant = f"threshold={threshold}"
                sweep.register_variant(
                    variant,
                    sweep.base.with_rrm(
                        sweep.base.rrm.with_hot_threshold(threshold)
                    ),
                )
            sweep.ensure(workloads, [Scheme.RRM], variant)
        sweep.ensure(workloads, [Scheme.STATIC_7, Scheme.STATIC_3])

    benchmark.pedantic(run_variants, rounds=1, iterations=1)

    def cells(threshold):
        variant = (
            "default" if threshold == sweep.base.rrm.hot_threshold
            else f"threshold={threshold}"
        )
        return [sweep.get(w, Scheme.RRM, variant) for w in workloads]

    baselines = [sweep.get(w, Scheme.STATIC_7) for w in workloads]
    fast = [sweep.get(w, Scheme.STATIC_3) for w in workloads]

    rows = []
    speedups = {}
    lifetimes = {}
    for threshold in THRESHOLDS:
        results = cells(threshold)
        speedups[threshold] = geomean(
            [r.ipc / b.ipc for r, b in zip(results, baselines)]
        )
        lifetimes[threshold] = geomean([r.lifetime_years for r in results])
        fast_share = sum(r.fast_write_fraction for r in results) / len(results)
        rows.append([
            f"hot_threshold={threshold}",
            speedups[threshold],
            lifetimes[threshold],
            f"{fast_share:.0%}",
        ])
    rows.append([
        "Static-3-SETs",
        geomean([f.ipc / b.ipc for f, b in zip(fast, baselines)]),
        geomean([f.lifetime_years for f in fast]),
        "100%",
    ])

    write_report(
        "fig11_hot_threshold",
        format_table(
            ["configuration", "speedup vs S7", "lifetime (y)", "fast writes"],
            rows,
            title=("Figure 11: hot_threshold sweep "
                   f"(geomean over {', '.join(workloads)})"),
        ),
    )

    # Shape: speedup monotone non-increasing, lifetime non-decreasing.
    speedup_series = [speedups[t] for t in THRESHOLDS]
    lifetime_series = [lifetimes[t] for t in THRESHOLDS]
    assert all(
        a >= b * 0.995 for a, b in zip(speedup_series, speedup_series[1:])
    ), speedup_series
    assert all(
        a <= b * 1.02 for a, b in zip(lifetime_series, lifetime_series[1:])
    ), lifetime_series
    # Threshold 8 is meaningfully faster than 64.
    assert speedups[8] > speedups[64]
