"""Paper Figure 9: wear distribution including the RRM's refresh classes.

Splits wear into demand writes, RRM selective refreshes and global
refreshes. Shape targets: for the RRM scheme both refresh classes are a
small fraction of its total wear (the paper's Section VI-B conclusion
that the RRM "does a good job identifying and refreshing the hot memory
region that is limited in size").
"""

from benchmarks.common import workloads_under_test, write_report
from repro.analysis.report import format_table, wear_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, all_schemes


def bench_fig09_wear_distribution(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = all_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }

    text = wear_report(
        runner, schemes,
        title=("Figure 9: wear per 5s window (write / RRM refresh / global "
               "refresh), normalised to Static-7-SETs total"),
    )

    # Per-workload RRM wear split detail.
    rows = []
    for workload in workloads:
        wear = sweep.get(workload, Scheme.RRM).wear
        rows.append([
            workload,
            wear.demand_rate,
            wear.rrm_fast_refresh_rate,
            wear.rrm_slow_refresh_rate,
            wear.global_refresh_rate,
            f"{wear.rrm_refresh_rate / wear.total_rate:.2%}",
        ])
    text += "\n\n" + format_table(
        ["workload", "demand/s", "rrm fast/s", "rrm slow/s",
         "global/s", "rrm share"],
        rows,
        title="RRM wear split per workload (block writes per virtual second)",
    )
    write_report("fig09_wear_distribution", text)

    # Shape: RRM refresh wear is a minor component of RRM total wear.
    for workload in workloads:
        wear = sweep.get(workload, Scheme.RRM).wear
        assert wear.rrm_refresh_rate < 0.35 * wear.total_rate, workload
    # Static-3's refresh wear dwarfs RRM's entire wear.
    for workload in workloads:
        s3 = sweep.get(workload, Scheme.STATIC_3).wear
        rrm = sweep.get(workload, Scheme.RRM).wear
        assert s3.refresh_rate > 3 * rrm.total_rate, workload
