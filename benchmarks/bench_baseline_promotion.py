"""Baseline study: RRM vs an Amnesic-style promotion policy (Section III-B).

The paper argues that a write-fast-first / promote-later file-cache
policy is unsuitable for MLC PCM main memory: it issues multiple writes
per block and must track *every* written block, not just the hot ones.
This bench runs that policy in the same system and measures the argument.

What the measurement shows (recorded in EXPERIMENTS.md): the policy's
failure at main-memory scale is *bandwidth*, not only wear — because it
tracks and fast-refreshes every written block, its refresh + promotion
traffic is an order of magnitude larger than the RRM's, and despite
writing everything fast it ends up *slower* than the RRM. Its per-block
extra writes (promotions) also exceed the RRM's entire selective-refresh
budget.
"""

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.core.baselines import PromotionMonitor
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.utils.mathx import geomean

WORKLOADS = ["GemsFDTD", "libquantum"]


def _run_promotion(config, workload):
    system = System(
        config, workload, Scheme.RRM,
        monitor_factory=lambda modes, sim, controller: PromotionMonitor(
            config.rrm, modes, sim=sim, controller=controller
        ),
    )
    result = system.run()
    return result, system.rrm


def bench_baseline_promotion(sweep, benchmark):
    def run_all():
        promo = {w: _run_promotion(sweep.base, w) for w in WORKLOADS}
        sweep.ensure(WORKLOADS, [Scheme.STATIC_7, Scheme.STATIC_3, Scheme.RRM])
        return promo

    promo = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    promo_speed, rrm_speed = [], []
    for workload in WORKLOADS:
        baseline = sweep.get(workload, Scheme.STATIC_7)
        rrm = sweep.get(workload, Scheme.RRM)
        s3 = sweep.get(workload, Scheme.STATIC_3)
        result, monitor = promo[workload]
        promo_speed.append(result.ipc / baseline.ipc)
        rrm_speed.append(rrm.ipc / baseline.ipc)
        promo_overhead = (
            result.rrm_fast_refreshes + result.rrm_slow_refreshes
        ) / max(1, result.writes)
        rrm_overhead = (
            rrm.rrm_fast_refreshes + rrm.rrm_slow_refreshes
        ) / max(1, rrm.writes)
        rows.append([
            workload,
            rrm.ipc / baseline.ipc,
            result.ipc / baseline.ipc,
            s3.ipc / baseline.ipc,
            f"{rrm_overhead:.2%}",
            f"{promo_overhead:.2%}",
            rrm.lifetime_years,
            result.lifetime_years,
            monitor.promotions_issued,
        ])

    write_report(
        "baseline_promotion",
        format_table(
            ["workload", "RRM xS7", "promo xS7", "S3 xS7",
             "RRM refr/wr", "promo refr/wr",
             "RRM life(y)", "promo life(y)", "promotions"],
            rows,
            title="RRM vs write-fast-promote-later baseline",
        ),
    )

    # Despite writing everything fast, the baseline fails to beat the RRM
    # — its untargeted refresh + promotion traffic consumes the bandwidth
    # the fast writes freed.
    assert geomean(promo_speed) <= geomean(rrm_speed) * 1.02
    # Its maintenance-write overhead per demand write dwarfs the RRM's.
    for workload in WORKLOADS:
        result, monitor = promo[workload]
        rrm = sweep.get(workload, Scheme.RRM)
        promo_maint = result.rrm_fast_refreshes + result.rrm_slow_refreshes
        rrm_maint = rrm.rrm_fast_refreshes + rrm.rrm_slow_refreshes
        assert promo_maint > 1.5 * rrm_maint, workload
        assert monitor.promotions_issued > 0
