"""Paper Figure 12: sensitivity to the RRM's LLC coverage rate.

Varies only the set count to get 2x / 4x / 8x / 16x LLC coverage. Shape
targets (paper Section VI-E): 2x coverage performs considerably worse
(set contention evicts hot entries before they pay off); 8x and 16x add
essentially nothing over the default 4x.
"""

from benchmarks.common import SENSITIVITY_WORKLOADS, write_report
from repro.analysis.report import format_table
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean
from repro.utils.units import format_bytes

COVERAGE_RATES = [2, 4, 8, 16]


def bench_fig12_coverage(sweep, benchmark):
    workloads = SENSITIVITY_WORKLOADS
    base_rrm = sweep.base.rrm
    llc_bytes = sweep.base.llc_bytes
    default_rate = base_rrm.coverage_bytes // llc_bytes

    def variant_name(rate):
        return "default" if rate == default_rate else f"coverage={rate}x"

    def run_variants():
        for rate in COVERAGE_RATES:
            variant = variant_name(rate)
            if variant != "default":
                sweep.register_variant(
                    variant,
                    sweep.base.with_rrm(
                        base_rrm.with_coverage_rate(llc_bytes, rate)
                    ),
                )
            sweep.ensure(workloads, [Scheme.RRM], variant)
        sweep.ensure(workloads, [Scheme.STATIC_7])

    benchmark.pedantic(run_variants, rounds=1, iterations=1)

    baselines = [sweep.get(w, Scheme.STATIC_7) for w in workloads]
    rows = []
    speedups = {}
    for rate in COVERAGE_RATES:
        variant = variant_name(rate)
        config = sweep.config_for(variant)
        results = [sweep.get(w, Scheme.RRM, variant) for w in workloads]
        speedups[rate] = geomean(
            [r.ipc / b.ipc for r, b in zip(results, baselines)]
        )
        lifetime = geomean([r.lifetime_years for r in results])
        rows.append([
            f"{rate}x" + (" (default)" if variant == "default" else ""),
            f"{config.rrm.n_sets} sets x {config.rrm.n_ways} ways",
            format_bytes(config.rrm.storage_bytes),
            speedups[rate],
            lifetime,
        ])

    write_report(
        "fig12_coverage",
        format_table(
            ["LLC coverage", "geometry", "storage", "speedup vs S7",
             "lifetime (y)"],
            rows,
            title=("Figure 12 / Table VIII: RRM coverage-rate sweep "
                   f"(geomean over {', '.join(workloads)})"),
        ),
    )

    # Shape: 2x notably below 4x; 8x/16x within noise of 4x.
    assert speedups[2] < speedups[4] * 0.99, speedups
    for rate in (8, 16):
        assert abs(speedups[rate] - speedups[4]) < 0.08 * speedups[4], speedups
