"""Paper Figure 4: normalised wear of the static schemes, split by source.

Wear per 5 virtual seconds, split into demand writes vs. (global) refresh
rewrites, normalised to Static-7's total. Shape target: refresh wear
becomes the dominant component for Static-4 and Static-3.
"""

from benchmarks.common import workloads_under_test, write_report
from repro.analysis.report import wear_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import static_schemes


def bench_fig04_static_wear(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = static_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }
    write_report(
        "fig04_static_wear",
        wear_report(
            runner, schemes,
            title=("Figure 4: wear per 5s window split write/refresh, "
                   "normalised to Static-7-SETs total"),
        ),
    )

    def refresh_share(scheme):
        shares = []
        for workload in workloads:
            wear = sweep.get(workload, scheme).wear
            shares.append(wear.refresh_rate / wear.total_rate)
        return sum(shares) / len(shares)

    # Refresh share of wear grows monotonically as SETs fall, and
    # dominates for Static-3 (paper: dominant for Static-4 and Static-3).
    shares = [refresh_share(s) for s in schemes]
    assert shares == sorted(shares), shares
    assert shares[-1] > 0.5, f"Static-3 refresh wear not dominant: {shares[-1]}"
    assert shares[0] < 0.1, f"Static-7 refresh wear should be negligible: {shares[0]}"
