"""Ablation study: which RRM design choices matter and why.

Not a paper figure — this regenerates the *arguments* the paper makes in
prose for its design choices (Sections IV-D, IV-G, Table V):

- ``no-filter``: register clean LLC writes too. Streaming workloads then
  promote write-once regions to hot, inflating selective-refresh wear for
  no performance gain.
- ``no-decay``: never demote hot entries. Measured finding: under the
  default geometry this changes *nothing*, because LRU eviction of idle
  entries performs the same demotion work — decay and eviction are
  redundant safety nets. The decay mechanism becomes load-bearing when
  the tracker has slack (eviction never fires), so the decay claim is
  asserted on an oversized (16x coverage) RRM where obsolete hot regions
  would otherwise be fast-refreshed forever.
- ``no-pausing``: disable write pausing *system-wide* (the RRM variant is
  compared against a Static-7 baseline also run without pausing). Read
  latency rises for every scheme.
"""

import dataclasses

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean

WORKLOADS = ["GemsFDTD", "libquantum"]


def bench_ablations(sweep, benchmark):
    base = sweep.base

    def register():
        sweep.register_variant(
            "ablate:no-filter",
            base.with_rrm(dataclasses.replace(base.rrm, streaming_filter=False)),
        )
        sweep.register_variant(
            "ablate:no-decay",
            base.with_rrm(dataclasses.replace(base.rrm, decay_enabled=False)),
        )
        # The decay pair runs 2.5x longer: demotions land roughly two
        # decay intervals after a region goes cold, so their refresh
        # savings only register once several refresh interrupts follow
        # the workload's phase changes.
        big_rrm = base.rrm.with_coverage_rate(base.llc_bytes, 16)
        long_base = dataclasses.replace(base, duration_s=base.duration_s * 2.5)
        sweep.register_variant("ablate:big-rrm", long_base.with_rrm(big_rrm))
        sweep.register_variant(
            "ablate:big-rrm-no-decay",
            long_base.with_rrm(
                dataclasses.replace(big_rrm, decay_enabled=False)
            ),
        )
        sweep.register_variant(
            "ablate:no-pausing",
            dataclasses.replace(
                base,
                memory=dataclasses.replace(base.memory, allow_write_pausing=False),
            ),
        )
        for variant in (
            "default", "ablate:no-filter", "ablate:no-decay",
            "ablate:big-rrm", "ablate:big-rrm-no-decay",
        ):
            sweep.ensure(WORKLOADS, [Scheme.RRM], variant)
        # The pausing ablation changes the device, so its baseline must
        # change with it.
        sweep.ensure(WORKLOADS, [Scheme.RRM, Scheme.STATIC_7], "ablate:no-pausing")
        sweep.ensure(WORKLOADS, [Scheme.STATIC_7])

    benchmark.pedantic(register, rounds=1, iterations=1)

    def summarise(variant, baseline_variant="default"):
        results = [sweep.get(w, Scheme.RRM, variant) for w in WORKLOADS]
        baselines = [
            sweep.get(w, Scheme.STATIC_7, baseline_variant) for w in WORKLOADS
        ]
        return {
            "speedup": geomean(
                [r.ipc / b.ipc for r, b in zip(results, baselines)]
            ),
            "lifetime": geomean([r.lifetime_years for r in results]),
            "refreshes": sum(
                r.rrm_fast_refreshes + r.rrm_slow_refreshes for r in results
            ),
            "read_latency": sum(r.avg_read_latency_ns for r in results)
            / len(results),
        }

    stats = {
        "default": summarise("default"),
        "no-filter": summarise("ablate:no-filter"),
        "no-decay": summarise("ablate:no-decay"),
        "big-rrm": summarise("ablate:big-rrm"),
        "big-rrm-no-decay": summarise("ablate:big-rrm-no-decay"),
        "no-pausing": summarise("ablate:no-pausing", "ablate:no-pausing"),
    }

    rows = [
        [
            label,
            stats[key]["speedup"],
            stats[key]["lifetime"],
            stats[key]["refreshes"],
            stats[key]["read_latency"],
        ]
        for key, label in [
            ("default", "RRM (all mechanisms)"),
            ("no-filter", "no streaming filter"),
            ("no-decay", "no decay (eviction compensates)"),
            ("big-rrm", "16x coverage RRM"),
            ("big-rrm-no-decay", "16x coverage, no decay"),
            ("no-pausing", "no write pausing (paired baseline)"),
        ]
    ]
    write_report(
        "ablations",
        format_table(
            ["configuration", "speedup vs S7", "lifetime (y)",
             "rrm refreshes", "read lat (ns)"],
            rows,
            title=f"RRM ablations (geomean over {', '.join(WORKLOADS)})",
        ),
    )

    # No streaming filter: refresh traffic inflates (write-once pollution).
    assert stats["no-filter"]["refreshes"] > stats["default"]["refreshes"]
    # Under the default geometry, eviction stands in for decay: disabling
    # decay changes little.
    assert stats["no-decay"]["refreshes"] >= stats["default"]["refreshes"]
    # With an oversized tracker (no eviction pressure) over a long enough
    # window, decay is the only path that stops refreshing obsolete hot
    # regions — disabling it can only add refresh traffic.
    assert stats["big-rrm-no-decay"]["refreshes"] >= (
        stats["big-rrm"]["refreshes"]
    )
    # No pausing: reads wait behind full write pulses.
    no_pause_reads = [
        sweep.get(w, Scheme.STATIC_7, "ablate:no-pausing").avg_read_latency_ns
        for w in WORKLOADS
    ]
    paused_reads = [
        sweep.get(w, Scheme.STATIC_7).avg_read_latency_ns for w in WORKLOADS
    ]
    assert sum(no_pause_reads) > sum(paused_reads)
