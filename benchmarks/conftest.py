"""Benchmark fixtures: one sweep cache shared by the whole session."""

from __future__ import annotations

import pytest

from benchmarks.common import SweepCache


@pytest.fixture(scope="session")
def sweep() -> SweepCache:
    return SweepCache()
