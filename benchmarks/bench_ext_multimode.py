"""Extension study: the tiered (3/5/7-SETs) multi-mode RRM.

The paper restricts its RRM to two write modes "for implementation
simplicity" (Section IV-A) and leaves more modes as an open direction.
This bench quantifies that direction: warm regions (below hot_threshold
but above warm_threshold) use the intermediate 5-SETs mode — 850ns
instead of 1150ns, with ~104s retention whose refresh burden is two
orders of magnitude lighter than the fast tier's.

Expected outcome: a modest additional speedup over the two-mode RRM
(slow writes shrink) at essentially unchanged lifetime.
"""

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.core.multimode import TieredRetentionMonitor, TieredRRMConfig
from repro.sim.schemes import Scheme
from repro.sim.system import System
from repro.utils.mathx import geomean

WORKLOADS = ["GemsFDTD", "mcf"]


def _run_tiered(config, workload):
    tiered_config = TieredRRMConfig(
        n_sets=config.rrm.n_sets,
        n_ways=config.rrm.n_ways,
        hot_threshold=config.rrm.hot_threshold,
        refresh_slack_fraction=config.rrm.refresh_slack_fraction,
    )
    system = System(
        config, workload, Scheme.RRM,
        monitor_factory=lambda modes, sim, controller: TieredRetentionMonitor(
            tiered_config, modes, sim=sim, controller=controller
        ),
    )
    result = system.run()
    return result, system.rrm


def bench_ext_multimode(sweep, benchmark):
    def run_all():
        tiered = {}
        for workload in WORKLOADS:
            tiered[workload] = _run_tiered(sweep.base, workload)
        sweep.ensure(WORKLOADS, [Scheme.STATIC_7, Scheme.RRM])
        return tiered

    tiered = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    two_mode_speedups, tiered_speedups = [], []
    for workload in WORKLOADS:
        baseline = sweep.get(workload, Scheme.STATIC_7)
        two_mode = sweep.get(workload, Scheme.RRM)
        tiered_result, monitor = tiered[workload]
        two_mode_speedups.append(two_mode.ipc / baseline.ipc)
        tiered_speedups.append(tiered_result.ipc / baseline.ipc)
        mid_writes = tiered_result.writes - (
            tiered_result.fast_writes + tiered_result.slow_writes
        )
        rows.append([
            workload,
            two_mode.ipc / baseline.ipc,
            tiered_result.ipc / baseline.ipc,
            f"{tiered_result.fast_writes / tiered_result.writes:.0%}",
            f"{mid_writes / tiered_result.writes:.0%}",
            two_mode.lifetime_years,
            tiered_result.lifetime_years,
        ])

    write_report(
        "ext_multimode",
        format_table(
            ["workload", "RRM x S7", "tiered x S7", "fast", "mid",
             "RRM life(y)", "tiered life(y)"],
            rows,
            title="Extension: two-mode RRM vs tiered 3/5/7 RRM",
        ),
    )

    # The tiered monitor must not lose performance, and its lifetime must
    # stay in the same band as the two-mode RRM's.
    assert geomean(tiered_speedups) > geomean(two_mode_speedups) * 0.97
    for workload, (result, _) in tiered.items():
        two_mode = sweep.get(workload, Scheme.RRM)
        assert result.lifetime_years > two_mode.lifetime_years * 0.7, workload
