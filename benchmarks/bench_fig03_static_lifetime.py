"""Paper Figure 3: lifetime of the static write schemes.

Per-workload lifetime in years. Shape targets: lifetime collapses as the
SET count falls because the global refresh interval shrinks from ~3054s
(Static-7) to ~2s (Static-3); Static-3 lands around 0.3 years regardless
of workload (refresh wear dominates; paper reports 0.317y).
"""

from benchmarks.common import workloads_under_test, quick_mode, write_report
from repro.analysis.report import lifetime_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, static_schemes


def bench_fig03_static_lifetime(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = static_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }
    write_report(
        "fig03_static_lifetime",
        lifetime_report(
            runner, schemes,
            title="Figure 3: static-scheme memory lifetime (years)",
        ),
    )

    lifetimes = [runner.geomean_lifetime(s) for s in schemes]
    # Slow-to-fast ordering: lifetime must fall monotonically.
    assert lifetimes == sorted(lifetimes, reverse=True), lifetimes
    # Static-3 is refresh-bound near the paper's 0.3 years (the tiny quick
    # config uses a smaller device where demand wear shifts it slightly).
    s3 = runner.geomean_lifetime(Scheme.STATIC_3)
    if not quick_mode():
        assert 0.1 < s3 < 0.5, s3
    # Static-7 lives at least an order of magnitude longer than Static-3.
    assert runner.geomean_lifetime(Scheme.STATIC_7) > 8 * s3
