"""Paper Figure 7: RRM performance vs. every static scheme.

Per-workload IPC normalised to Static-7-SETs, now including the RRM.
Shape targets from the paper: RRM clearly outperforms Static-7 (paper:
+62% geomean) and Static-4 (the second-fastest static), while remaining
somewhat below Static-3 (paper: within ~10%, bridging 77.2% of the
Static-7 -> Static-3 gap).
"""

from benchmarks.common import workloads_under_test, write_report
from repro.analysis.report import performance_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, all_schemes
from repro.utils.mathx import geomean


def bench_fig07_rrm_performance(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = all_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }

    rrm = runner.geomean_speedup(Scheme.RRM, Scheme.STATIC_7)
    s3 = runner.geomean_speedup(Scheme.STATIC_3, Scheme.STATIC_7)
    s4 = runner.geomean_speedup(Scheme.STATIC_4, Scheme.STATIC_7)
    bridge = geomean(
        [
            max(1e-9, (sweep.get(w, Scheme.RRM).ipc - sweep.get(w, Scheme.STATIC_7).ipc)
                / max(1e-9, sweep.get(w, Scheme.STATIC_3).ipc
                      - sweep.get(w, Scheme.STATIC_7).ipc))
            for w in workloads
            if sweep.get(w, Scheme.STATIC_3).ipc
            > sweep.get(w, Scheme.STATIC_7).ipc * 1.02
        ]
    )

    text = performance_report(
        runner, schemes,
        title="Figure 7: IPC normalised to Static-7-SETs (with RRM)",
    )
    text += (
        f"\n\nRRM speedup over Static-7 (geomean): {rrm:.3f}"
        f"  [paper: 1.62]"
        f"\nStatic-3 speedup over Static-7 (geomean): {s3:.3f}"
        f"\ngap bridged by RRM (memory-sensitive workloads): {bridge:.1%}"
        f"  [paper: 77.2%]"
    )
    write_report("fig07_rrm_performance", text)

    # Shape: RRM beats Static-7 and the second-best static, trails Static-3.
    assert rrm > 1.05
    assert rrm > s4
    assert rrm <= s3 * 1.02
