"""Paper Figure 2: performance of the static write schemes.

Per-workload IPC of Static-7 .. Static-3, normalised to Static-7-SETs.
Shape targets: monotonically higher IPC with fewer SETs; Static-3 clearly
fastest (the paper reports it beating Static-4 by 15.6% geomean).
"""

from benchmarks.common import (
    workloads_under_test,
    write_report,
)
from repro.analysis.report import performance_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, static_schemes


def bench_fig02_static_performance(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = static_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }
    write_report(
        "fig02_static_performance",
        performance_report(
            runner, schemes,
            title="Figure 2: static-scheme IPC normalised to Static-7-SETs",
        ),
    )

    # Monotonicity of the geomean: fewer SETs -> faster.
    geomeans = [runner.geomean_speedup(s, Scheme.STATIC_7) for s in schemes]
    assert geomeans == sorted(geomeans), f"not monotonic: {geomeans}"
    # Static-3 beats Static-4 by a visible margin.
    s3 = runner.geomean_speedup(Scheme.STATIC_3, Scheme.STATIC_7)
    s4 = runner.geomean_speedup(Scheme.STATIC_4, Scheme.STATIC_7)
    assert s3 > s4 > 1.0
