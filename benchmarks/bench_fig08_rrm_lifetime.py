"""Paper Figure 8: RRM lifetime vs. every static scheme.

Shape targets from the paper: RRM achieves a lifetime vastly better than
Static-3/Static-4 (6.4 years vs 0.3 for Static-3) while giving up some
lifetime against Static-7 (10.6 years) — mostly because RRM's higher IPC
issues more demand writes in the same wall time, not because of its own
selective refreshes.
"""

from benchmarks.common import workloads_under_test, write_report
from repro.analysis.report import lifetime_report
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, all_schemes


def bench_fig08_rrm_lifetime(sweep, benchmark):
    workloads = workloads_under_test()
    schemes = all_schemes()
    benchmark.pedantic(
        lambda: sweep.ensure(workloads, schemes), rounds=1, iterations=1
    )

    runner = ExperimentRunner(sweep.base, workloads=workloads, schemes=schemes)
    runner.results = {
        (w, s): sweep.get(w, s) for w in workloads for s in schemes
    }

    rrm = runner.geomean_lifetime(Scheme.RRM)
    s7 = runner.geomean_lifetime(Scheme.STATIC_7)
    s3 = runner.geomean_lifetime(Scheme.STATIC_3)
    s4 = runner.geomean_lifetime(Scheme.STATIC_4)

    text = lifetime_report(
        runner, schemes,
        title="Figure 8: memory lifetime in years (with RRM)",
    )
    text += (
        f"\n\ngeomean lifetimes: Static-7 {s7:.2f}y, RRM {rrm:.2f}y, "
        f"Static-4 {s4:.2f}y, Static-3 {s3:.2f}y"
        f"\n[paper: Static-7 10.6y, RRM 6.4y, Static-3 0.3y]"
    )
    write_report("fig08_rrm_lifetime", text)

    # Shape: RRM lifetime sits between Static-7 and the fast statics, and
    # is at least several times Static-3's.
    assert s3 < s4 < rrm <= s7
    assert rrm > 5 * s3
