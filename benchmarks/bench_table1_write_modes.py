"""Paper Table I: the write latency / retention trade-off.

Regenerates every row of Table I from the drift model and the write pulse
recurrence, and asserts the reproduction stays within calibration error.
"""

import pytest

from benchmarks.common import write_report
from repro.analysis.report import format_table
from repro.pcm.write_modes import WriteModeTable

#: (current uA, normalised energy, retention s, latency ns) per SET count.
PAPER_TABLE_I = {
    7: (30, 1.000, 3054.9, 1150),
    6: (32, 0.975, 991.4, 1000),
    5: (35, 0.972, 104.4, 850),
    4: (37, 0.869, 24.05, 700),
    3: (42, 0.840, 2.01, 550),
}


def bench_table1_write_modes(benchmark):
    table = benchmark.pedantic(WriteModeTable, rounds=1, iterations=1)

    rows = []
    for n_sets in sorted(PAPER_TABLE_I, reverse=True):
        current, energy, retention, latency = PAPER_TABLE_I[n_sets]
        mode = table.mode(n_sets)
        assert mode.set_current_ua == current
        assert mode.normalized_energy == pytest.approx(energy)
        assert mode.retention_s == pytest.approx(retention, rel=0.005)
        assert mode.latency_ns == pytest.approx(latency)
        rows.append([
            mode.name,
            f"{mode.set_current_ua:.0f}",
            f"{mode.normalized_energy:.3f}",
            f"{mode.retention_s:.2f}",
            f"{retention}",
            f"{mode.latency_ns:.0f}",
        ])

    write_report(
        "table1_write_modes",
        format_table(
            ["Write Type", "Current(uA)", "N.Energy",
             "Retention(s)", "Paper(s)", "Latency(ns)"],
            rows,
            title="Table I: write modes derived from the drift model",
        ),
    )
